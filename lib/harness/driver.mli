(** Timed multi-domain throughput driver.

    Reproduces the paper's measurement methodology at container scale:
    initialise the structure to ~n keys from a universe of 2n, run every
    thread on its operation mix for a fixed duration, report operations
    per second (averaged over [repeats] runs).

    One hardware core means domains beyond the first time-share; the
    driver still measures aggregate throughput, which is the quantity the
    oversubscription experiments (Figure 11) need. *)

type group = {
  g_count : int;  (** number of threads in this group *)
  g_update_percent : int;
  g_query : Workload.Opgen.query_kind;
}

type spec = {
  map : (module Dstruct.Map_intf.MAP);
  mode : Verlib.Vptr.mode;
  lock_mode : Flock.Lock.mode;
  scheme : Verlib.Stamp.scheme;
  direct_stores : bool;
  n : int;  (** target structure size *)
  theta : float;  (** Zipfian parameter, 0 = uniform *)
  groups : group list;
  duration : float;  (** seconds per run *)
  repeats : int;
  seed : int;
  lat_sample : int;
      (** 0 disables per-op latency sampling (the default); a power of
          two [n] samples 1-in-[n] operations into the [Verlib.Obs]
          per-op-kind latency histograms. *)
  census : bool;
      (** register the structure with [Verlib.Chainscan] for the run and
          take a quiescent final census (exact audit) after workers join. *)
  census_interval : float;
      (** when [census] is set and this is > 0, a background domain
          additionally walks the structure every [census_interval] seconds
          while the workers run, recording a time series of censuses
          (chain growth / reclamation lag over time). *)
}

val default_spec : (module Dstruct.Map_intf.MAP) -> spec
(** 4 threads, 20% updates + multifinds of 16, n = 10_000, uniform keys,
    0.3 s, 1 repeat — a scaled-down rendition of the paper's default. *)

type result = {
  total_mops : float;  (** million operations per second, all groups *)
  group_mops : float list;  (** per [groups] entry *)
  aborts : int;  (** optimistic snapshot re-runs *)
  increments : int;  (** global-clock increments *)
  final_size : int;
  obs : Verlib.Obs.report;
      (** per-run counter deltas and histogram summaries (counters are
          reset at the top of each run; captured after workers join, so
          exact).  Of the last repeat when [repeats > 1]. *)
  space_bytes_per_entry : float;
      (** quiescent [Space.bytes_per_entry] over the whole structure,
          including any version-chain tails still retained. *)
  census : Verlib.Chainscan.census option;
      (** quiescent final census when [spec.census]; its audit is exact
          (any reported violation is a real invariant break). *)
  census_series : (float * Verlib.Chainscan.census) list;
      (** (elapsed-seconds, census) samples from the background sampler,
          oldest first; empty unless [spec.census] and
          [spec.census_interval > 0]. *)
  alloc_bytes_per_op : float;
      (** GC-allocated bytes per completed operation: sum of per-worker
          [Gc.allocated_bytes] deltas over the measured loop, divided by
          total ops.  Averaged over repeats. *)
  gc_minor : int;
      (** minor collections during the last run, seen from the spawning
          domain (domain-local in OCaml 5, so an under-count —
          informational) *)
  gc_major : int;
      (** major collections during the last run (global counter) *)
}

val run : spec -> result
(** Builds, fills, runs and validates ([check]) the structure. *)

val request_stop : unit -> unit
(** Cooperative external stop, for signal handlers: the current run's
    measurement window ends at the next 50 ms slice, remaining repeats
    are skipped, and [run] still returns a complete result (workers and
    the census sampler joined, final census and report intact) instead
    of the process dying mid-write.  Sticky for the process lifetime. *)

val interrupted : unit -> bool
(** Whether {!request_stop} has been called. *)
