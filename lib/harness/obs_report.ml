(* Rendering of Verlib.Obs reports for the CLI, the benchmark harness
   and the examples: aligned tables ("pretty"), machine-readable JSON,
   and a compact one-liner for per-figure benchmark trails. *)

module Obs = Verlib.Obs
module Hist = Verlib.Obs.Hist

let is_cycles name =
  let suffix = "_cycles" in
  let nl = String.length name and sl = String.length suffix in
  nl >= sl && String.sub name (nl - sl) sl = suffix

let us cycles = Verlib.Hwclock.to_us cycles

(* --- pretty ------------------------------------------------------------ *)

let pretty_counters ?out (r : Obs.report) =
  let rows =
    List.map (fun (name, v) -> [ name; string_of_int v ]) r.Obs.counters
  in
  Table.print ?out ~title:"Observability: counters" ~header:[ "counter"; "total" ] rows

let hist_row (s : Hist.summary) =
  if is_cycles s.Hist.s_name then
    [
      s.Hist.s_name;
      string_of_int s.Hist.s_count;
      Printf.sprintf "%.1fus" (us s.Hist.s_p50);
      Printf.sprintf "%.1fus" (us s.Hist.s_p90);
      Printf.sprintf "%.1fus" (us s.Hist.s_p99);
      Printf.sprintf "%.1fus" (us s.Hist.s_max);
    ]
  else
    [
      s.Hist.s_name;
      string_of_int s.Hist.s_count;
      string_of_int s.Hist.s_p50;
      string_of_int s.Hist.s_p90;
      string_of_int s.Hist.s_p99;
      string_of_int s.Hist.s_max;
    ]

let pretty_hists ?out (r : Obs.report) =
  let rows = List.map hist_row r.Obs.hists in
  Table.print ?out
    ~title:"Observability: histograms (percentiles are bucket upper bounds)"
    ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
    rows

let pretty_gauges ?out (r : Obs.report) =
  if r.Obs.gauges <> [] then
    Table.print ?out ~title:"Observability: gauges (instantaneous, at capture)"
      ~header:[ "gauge"; "value" ]
      (List.map (fun (name, v) -> [ name; string_of_int v ]) r.Obs.gauges)

let pretty_print ?out (r : Obs.report) =
  pretty_counters ?out r;
  pretty_hists ?out r;
  pretty_gauges ?out r

(* --- census ------------------------------------------------------------- *)

module Chainscan = Verlib.Chainscan

let pretty_census ?(out = stdout) (c : Chainscan.census) =
  Table.print ~out ~title:"Chain census"
    ~header:[ "metric"; "value" ]
    [
      [ "pointers"; string_of_int c.Chainscan.c_pointers ];
      [ "plain_pointers"; string_of_int c.c_plain_pointers ];
      [ "versions"; string_of_int c.c_versions ];
      [ "live_versions"; string_of_int c.c_live_versions ];
      [ "reclaimable"; string_of_int c.c_reclaimable ];
      [ "indirect_heads"; string_of_int c.c_indirect_heads ];
      [ "indirect_links"; string_of_int c.c_indirect_links ];
      [ "shortcutable"; string_of_int c.c_shortcutable ];
      [ "shortcut_ratio"; Printf.sprintf "%.3f" (Chainscan.shortcut_ratio c) ];
      [ "chain_p50"; string_of_int (Chainscan.chain_p50 c) ];
      [ "chain_p99"; string_of_int (Chainscan.chain_p99 c) ];
      [ "chain_max"; string_of_int c.c_max_chain ];
      [ "done_stamp"; string_of_int c.c_done_stamp ];
      [ "clock"; string_of_int c.c_clock ];
      [ "violations"; string_of_int c.c_violation_count ];
    ];
  List.iter
    (fun v ->
      Printf.fprintf out "  VIOLATION: %s\n" (Chainscan.describe_violation v))
    c.Chainscan.c_violations

let json_of_census (c : Chainscan.census) =
  Printf.sprintf
    "{\"pointers\":%d,\"plain_pointers\":%d,\"nil_heads\":%d,\"direct_heads\":%d,\
     \"indirect_heads\":%d,\"tbd_heads\":%d,\"versions\":%d,\"live_versions\":%d,\
     \"reclaimable\":%d,\"indirect_links\":%d,\"shortcutable\":%d,\
     \"shortcut_ratio\":%.4f,\"chain_p50\":%d,\"chain_p99\":%d,\"chain_max\":%d,\
     \"truncated_walks\":%d,\"done_stamp\":%d,\"clock\":%d,\"violations\":%d}"
    c.Chainscan.c_pointers c.c_plain_pointers c.c_nil_heads c.c_direct_heads
    c.c_indirect_heads c.c_tbd_heads c.c_versions c.c_live_versions
    c.c_reclaimable c.c_indirect_links c.c_shortcutable
    (Chainscan.shortcut_ratio c) (Chainscan.chain_p50 c) (Chainscan.chain_p99 c)
    c.c_max_chain c.c_truncated_walks c.c_done_stamp c.c_clock
    c.c_violation_count

(* --- JSON -------------------------------------------------------------- *)

let json_of_hist (s : Hist.summary) =
  let base =
    Printf.sprintf
      "{\"count\":%d,\"sum\":%d,\"mean\":%.1f,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d"
      s.Hist.s_count s.Hist.s_sum (Hist.mean s) s.Hist.s_p50 s.Hist.s_p90
      s.Hist.s_p99 s.Hist.s_max
  in
  if is_cycles s.Hist.s_name then
    Printf.sprintf "%s,\"p50_us\":%.3f,\"p90_us\":%.3f,\"p99_us\":%.3f,\"max_us\":%.3f}"
      base (us s.Hist.s_p50) (us s.Hist.s_p90) (us s.Hist.s_p99) (us s.Hist.s_max)
  else base ^ "}"

(* [extra] lets callers prepend run metadata (already-rendered JSON
   values, e.g. numbers or quoted strings) without a JSON AST. *)
let to_json ?(extra = []) (r : Obs.report) =
  let b = Buffer.create 4096 in
  Buffer.add_char b '{';
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf "\"%s\":%s," (Jsonlite.escape k) v))
    extra;
  Buffer.add_string b "\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (Jsonlite.escape name) v))
    r.Obs.counters;
  Buffer.add_string b "},\"histograms\":{";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%s" (Jsonlite.escape s.Hist.s_name) (json_of_hist s)))
    r.Obs.hists;
  Buffer.add_string b "},\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (Jsonlite.escape name) v))
    r.Obs.gauges;
  Buffer.add_string b "}}";
  Buffer.contents b

(* --- one-liner ---------------------------------------------------------- *)

(* Compact mechanism trail for per-figure benchmark output: the non-zero
   counters plus the chain-length and snapshot-dwell distributions. *)
let one_line (r : Obs.report) =
  let counters =
    r.Obs.counters
    |> List.filter (fun (_, v) -> v <> 0)
    |> List.map (fun (name, v) -> Printf.sprintf "%s=%d" name v)
  in
  let hist name (s : Hist.summary) =
    if s.Hist.s_count = 0 then None
    else if is_cycles s.Hist.s_name then
      Some
        (Printf.sprintf "%s[n=%d p50=%.1fus p99=%.1fus]" name s.Hist.s_count
           (us s.Hist.s_p50) (us s.Hist.s_p99))
    else
      Some
        (Printf.sprintf "%s[n=%d p50=%d p99=%d max=%d]" name s.Hist.s_count
           s.Hist.s_p50 s.Hist.s_p99 s.Hist.s_max)
  in
  let hists =
    List.filter_map
      (fun (s : Hist.summary) ->
        match s.Hist.s_name with
        | "chain_len" -> hist "chain_len" s
        | "snap_dwell_cycles" -> hist "snap_dwell" s
        | "lock_retries" -> hist "lock_retries" s
        | _ -> None)
      r.Obs.hists
  in
  String.concat " " (counters @ hists)
