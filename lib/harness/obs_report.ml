(* Rendering of Verlib.Obs reports for the CLI, the benchmark harness
   and the examples: aligned tables ("pretty"), machine-readable JSON,
   and a compact one-liner for per-figure benchmark trails. *)

module Obs = Verlib.Obs
module Hist = Verlib.Obs.Hist

let is_cycles name =
  let suffix = "_cycles" in
  let nl = String.length name and sl = String.length suffix in
  nl >= sl && String.sub name (nl - sl) sl = suffix

let us cycles = Verlib.Hwclock.to_us cycles

(* --- pretty ------------------------------------------------------------ *)

let pretty_counters ?out (r : Obs.report) =
  let rows =
    List.map (fun (name, v) -> [ name; string_of_int v ]) r.Obs.counters
  in
  Table.print ?out ~title:"Observability: counters" ~header:[ "counter"; "total" ] rows

let hist_row (s : Hist.summary) =
  if is_cycles s.Hist.s_name then
    [
      s.Hist.s_name;
      string_of_int s.Hist.s_count;
      Printf.sprintf "%.1fus" (us s.Hist.s_p50);
      Printf.sprintf "%.1fus" (us s.Hist.s_p90);
      Printf.sprintf "%.1fus" (us s.Hist.s_p99);
      Printf.sprintf "%.1fus" (us s.Hist.s_max);
    ]
  else
    [
      s.Hist.s_name;
      string_of_int s.Hist.s_count;
      string_of_int s.Hist.s_p50;
      string_of_int s.Hist.s_p90;
      string_of_int s.Hist.s_p99;
      string_of_int s.Hist.s_max;
    ]

let pretty_hists ?out (r : Obs.report) =
  let rows = List.map hist_row r.Obs.hists in
  Table.print ?out
    ~title:"Observability: histograms (percentiles are bucket upper bounds)"
    ~header:[ "histogram"; "count"; "p50"; "p90"; "p99"; "max" ]
    rows

let pretty_gauges ?out (r : Obs.report) =
  if r.Obs.gauges <> [] then
    Table.print ?out ~title:"Observability: gauges (instantaneous, at capture)"
      ~header:[ "gauge"; "value" ]
      (List.map (fun (name, v) -> [ name; string_of_int v ]) r.Obs.gauges)

let pretty_print ?out (r : Obs.report) =
  pretty_counters ?out r;
  pretty_hists ?out r;
  pretty_gauges ?out r

(* --- census ------------------------------------------------------------- *)

module Chainscan = Verlib.Chainscan

let pretty_census ?(out = stdout) (c : Chainscan.census) =
  Table.print ~out ~title:"Chain census"
    ~header:[ "metric"; "value" ]
    [
      [ "pointers"; string_of_int c.Chainscan.c_pointers ];
      [ "plain_pointers"; string_of_int c.c_plain_pointers ];
      [ "versions"; string_of_int c.c_versions ];
      [ "live_versions"; string_of_int c.c_live_versions ];
      [ "reclaimable"; string_of_int c.c_reclaimable ];
      [ "indirect_heads"; string_of_int c.c_indirect_heads ];
      [ "indirect_links"; string_of_int c.c_indirect_links ];
      [ "shortcutable"; string_of_int c.c_shortcutable ];
      [ "shortcut_ratio"; Printf.sprintf "%.3f" (Chainscan.shortcut_ratio c) ];
      [ "chain_p50"; string_of_int (Chainscan.chain_p50 c) ];
      [ "chain_p99"; string_of_int (Chainscan.chain_p99 c) ];
      [ "chain_max"; string_of_int c.c_max_chain ];
      [ "done_stamp"; string_of_int c.c_done_stamp ];
      [ "clock"; string_of_int c.c_clock ];
      [ "violations"; string_of_int c.c_violation_count ];
    ];
  List.iter
    (fun v ->
      Printf.fprintf out "  VIOLATION: %s\n" (Chainscan.describe_violation v))
    c.Chainscan.c_violations

let json_of_census (c : Chainscan.census) =
  Printf.sprintf
    "{\"pointers\":%d,\"plain_pointers\":%d,\"nil_heads\":%d,\"direct_heads\":%d,\
     \"indirect_heads\":%d,\"tbd_heads\":%d,\"versions\":%d,\"live_versions\":%d,\
     \"reclaimable\":%d,\"indirect_links\":%d,\"shortcutable\":%d,\
     \"shortcut_ratio\":%.4f,\"chain_p50\":%d,\"chain_p99\":%d,\"chain_max\":%d,\
     \"truncated_walks\":%d,\"done_stamp\":%d,\"clock\":%d,\"violations\":%d}"
    c.Chainscan.c_pointers c.c_plain_pointers c.c_nil_heads c.c_direct_heads
    c.c_indirect_heads c.c_tbd_heads c.c_versions c.c_live_versions
    c.c_reclaimable c.c_indirect_links c.c_shortcutable
    (Chainscan.shortcut_ratio c) (Chainscan.chain_p50 c) (Chainscan.chain_p99 c)
    c.c_max_chain c.c_truncated_walks c.c_done_stamp c.c_clock
    c.c_violation_count

(* --- JSON -------------------------------------------------------------- *)

let json_of_hist (s : Hist.summary) =
  let base =
    Printf.sprintf
      "{\"count\":%d,\"sum\":%d,\"mean\":%.1f,\"p50\":%d,\"p90\":%d,\"p99\":%d,\"max\":%d"
      s.Hist.s_count s.Hist.s_sum (Hist.mean s) s.Hist.s_p50 s.Hist.s_p90
      s.Hist.s_p99 s.Hist.s_max
  in
  if is_cycles s.Hist.s_name then
    Printf.sprintf "%s,\"p50_us\":%.3f,\"p90_us\":%.3f,\"p99_us\":%.3f,\"max_us\":%.3f}"
      base (us s.Hist.s_p50) (us s.Hist.s_p90) (us s.Hist.s_p99) (us s.Hist.s_max)
  else base ^ "}"

(* [extra] lets callers prepend run metadata (already-rendered JSON
   values, e.g. numbers or quoted strings) without a JSON AST. *)
let to_json ?(extra = []) (r : Obs.report) =
  let b = Buffer.create 4096 in
  Buffer.add_char b '{';
  (* Which clock stamps every tick figure in this report: "rdtsc" or
     the "monotonic" fallback (non-x86 or non-invariant TSC) — without
     this a report's µs conversions cannot be trusted across hosts. *)
  Buffer.add_string b
    (Printf.sprintf "\"clock_source\":\"%s\","
       (Jsonlite.escape (Verlib.Hwclock.source ())));
  List.iter
    (fun (k, v) ->
      Buffer.add_string b (Printf.sprintf "\"%s\":%s," (Jsonlite.escape k) v))
    extra;
  Buffer.add_string b "\"counters\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (Jsonlite.escape name) v))
    r.Obs.counters;
  Buffer.add_string b "},\"histograms\":{";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%s" (Jsonlite.escape s.Hist.s_name) (json_of_hist s)))
    r.Obs.hists;
  Buffer.add_string b "},\"gauges\":{";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":%d" (Jsonlite.escape name) v))
    r.Obs.gauges;
  Buffer.add_string b "}}";
  Buffer.contents b

(* --- Prometheus text exposition ----------------------------------------- *)

(* The live metrics plane: render every Stats counter, every registered
   histogram (raw bucket counts, not just summaries) and every gauge in
   Prometheus text exposition format (version 0.0.4) — the format the
   [METRICS] wire command speaks.  Tick-valued histograms ([_cycles]
   suffix) are converted to µs with [_us] names so dashboards never see
   raw rdtsc units.  No dependency: the renderer is a Buffer walk, and
   {!parse_prometheus} below is the line-format validator the test suite
   and the loadgen share. *)

let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9')
        || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  "verlib_" ^ Bytes.to_string b

(* Render a float the exposition format accepts (no OCaml "1." forms). *)
let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let prom_hist b (h : Hist.t) =
  let name = Hist.name h in
  let buckets = Hist.buckets h in
  let cycles = is_cycles name in
  let base =
    if cycles then
      prom_name (String.sub name 0 (String.length name - String.length "_cycles"))
      ^ "_us"
    else prom_name name
  in
  Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" base);
  let hi = ref (-1) in
  Array.iteri (fun i c -> if c > 0 then hi := i) buckets;
  let cum = ref 0 in
  let sum = ref 0 in
  for i = 0 to !hi do
    cum := !cum + buckets.(i);
    let bound = Hist.bucket_bound i in
    (* Weight the sum by bucket upper bounds — the histogram stores
       counts only; the exposition [_sum] is the same <=2x overestimate
       the percentile summaries already quote. *)
    sum := !sum + (buckets.(i) * bound);
    let le = if cycles then prom_float (us bound) else string_of_int bound in
    Buffer.add_string b
      (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" base le !cum)
  done;
  let total = Array.fold_left ( + ) 0 buckets in
  Buffer.add_string b (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" base total);
  let s = if cycles then prom_float (us !sum) else string_of_int !sum in
  Buffer.add_string b (Printf.sprintf "%s_sum %s\n" base s);
  Buffer.add_string b (Printf.sprintf "%s_count %d\n" base total)

let prometheus ?(extra = []) () =
  let r = Verlib.Obs.capture () in
  let b = Buffer.create 8192 in
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" n n v))
    r.Obs.counters;
  List.iter (prom_hist b) (Hist.all ());
  List.iter
    (fun (name, v) ->
      let n = prom_name name in
      Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n%s %d\n" n n v))
    (r.Obs.gauges @ extra);
  Buffer.contents b

(* --- Prometheus line-format parser -------------------------------------- *)

type prom_sample = {
  m_name : string;
  m_labels : (string * string) list;
  m_value : float;
}

let is_name_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = ':'

let parse_prom_line lineno line =
  (* name{label="v",...} value  — labels optional. *)
  let fail msg = Error (Printf.sprintf "line %d: %s (%s)" lineno msg line) in
  let n = String.length line in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do incr i done;
  if !i = 0 then fail "expected metric name"
  else begin
    let name = String.sub line 0 !i in
    let labels = ref [] in
    let ok = ref true in
    let err = ref "" in
    if !i < n && line.[!i] = '{' then begin
      incr i;
      let stop = ref false in
      while (not !stop) && !ok do
        if !i >= n then begin ok := false; err := "unterminated labels" end
        else if line.[!i] = '}' then begin incr i; stop := true end
        else begin
          let j = ref !i in
          while !j < n && is_name_char line.[!j] do incr j done;
          if !j = !i || !j >= n || line.[!j] <> '=' then begin
            ok := false;
            err := "expected label=\"value\""
          end
          else begin
            let k = String.sub line !i (!j - !i) in
            i := !j + 1;
            if !i >= n || line.[!i] <> '"' then begin
              ok := false;
              err := "expected opening quote"
            end
            else begin
              incr i;
              let v = Buffer.create 8 in
              while !i < n && line.[!i] <> '"' do
                if line.[!i] = '\\' && !i + 1 < n then begin
                  (* Exposition-format label escapes: backslash,
                     double-quote and newline; anything else keeps the
                     backslash literally. *)
                  (match line.[!i + 1] with
                   | '\\' -> Buffer.add_char v '\\'
                   | '"' -> Buffer.add_char v '"'
                   | 'n' -> Buffer.add_char v '\n'
                   | c ->
                       Buffer.add_char v '\\';
                       Buffer.add_char v c);
                  i := !i + 2
                end
                else begin
                  Buffer.add_char v line.[!i];
                  incr i
                end
              done;
              if !i >= n then begin ok := false; err := "unterminated quote" end
              else begin
                incr i;
                labels := (k, Buffer.contents v) :: !labels;
                if !i < n && line.[!i] = ',' then incr i
              end
            end
          end
        end
      done
    end;
    if not !ok then fail !err
    else if !i >= n || line.[!i] <> ' ' then fail "expected space before value"
    else begin
      let value = String.sub line (!i + 1) (n - !i - 1) |> String.trim in
      match
        if value = "+Inf" then Some infinity
        else if value = "-Inf" then Some neg_infinity
        else if value = "NaN" then Some Float.nan
        else float_of_string_opt value
      with
      | None -> fail "unparsable value"
      | Some v -> Ok { m_name = name; m_labels = List.rev !labels; m_value = v }
    end
  end

let parse_prometheus text =
  let lines = String.split_on_char '\n' text in
  (* Track [# TYPE <name> counter] declarations so counter samples can
     be range-checked: a negative counter is always a producer bug. *)
  let counter_types = Hashtbl.create 16 in
  let note_type line =
    match String.split_on_char ' ' line with
    | [ "#"; "TYPE"; name; "counter" ] -> Hashtbl.replace counter_types name ()
    | _ -> ()
  in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
        let line = String.trim line in
        if String.length line > 0 && line.[0] = '#' then begin
          note_type line;
          go (lineno + 1) acc rest
        end
        else if line = "" then go (lineno + 1) acc rest
        else begin
          match parse_prom_line lineno line with
          | Error _ as e -> e
          | Ok s ->
              if Float.is_nan s.m_value then
                Error
                  (Printf.sprintf "line %d: NaN sample value (%s)" lineno
                     s.m_name)
              else if s.m_value < 0. && Hashtbl.mem counter_types s.m_name then
                Error
                  (Printf.sprintf "line %d: negative counter %s (%g)" lineno
                     s.m_name s.m_value)
              else go (lineno + 1) (s :: acc) rest
        end
  in
  match go 1 [] lines with
  | Error _ as e -> e
  | Ok samples ->
      (* Histogram consistency: cumulative buckets must be
         non-decreasing in appearance order and agree with _count. *)
      let tbl = Hashtbl.create 16 in
      let order = ref [] in
      List.iter
        (fun s ->
          let bl = String.length "_bucket" in
          let nl = String.length s.m_name in
          if nl > bl && String.sub s.m_name (nl - bl) bl = "_bucket" then begin
            let base = String.sub s.m_name 0 (nl - bl) in
            if not (Hashtbl.mem tbl base) then begin
              Hashtbl.add tbl base (ref []);
              order := base :: !order
            end;
            let r = Hashtbl.find tbl base in
            r := s.m_value :: !r
          end)
        samples;
      let bad = ref None in
      List.iter
        (fun base ->
          let cum = List.rev !(Hashtbl.find tbl base) in
          let mono =
            fst
              (List.fold_left
                 (fun (ok, prev) v -> (ok && v >= prev, v))
                 (true, neg_infinity) cum)
          in
          if not mono then
            bad := Some (Printf.sprintf "%s: buckets not cumulative" base)
          else begin
            let count =
              List.find_opt
                (fun s -> s.m_name = base ^ "_count" && s.m_labels = [])
                samples
            in
            match (count, List.rev cum) with
            | Some c, last :: _ when c.m_value <> last ->
                bad :=
                  Some
                    (Printf.sprintf "%s: _count %g <> +Inf bucket %g" base
                       c.m_value last)
            | _ -> ()
          end)
        (List.rev !order);
      (match !bad with Some msg -> Error msg | None -> Ok samples)

let prom_find samples name =
  List.find_opt (fun s -> s.m_name = name && s.m_labels = []) samples
  |> Option.map (fun s -> s.m_value)

(* --- one-liner ---------------------------------------------------------- *)

(* Compact mechanism trail for per-figure benchmark output: the non-zero
   counters plus the chain-length and snapshot-dwell distributions. *)
let one_line (r : Obs.report) =
  let counters =
    r.Obs.counters
    |> List.filter (fun (_, v) -> v <> 0)
    |> List.map (fun (name, v) -> Printf.sprintf "%s=%d" name v)
  in
  let hist name (s : Hist.summary) =
    if s.Hist.s_count = 0 then None
    else if is_cycles s.Hist.s_name then
      Some
        (Printf.sprintf "%s[n=%d p50=%.1fus p99=%.1fus]" name s.Hist.s_count
           (us s.Hist.s_p50) (us s.Hist.s_p99))
    else
      Some
        (Printf.sprintf "%s[n=%d p50=%d p99=%d max=%d]" name s.Hist.s_count
           s.Hist.s_p50 s.Hist.s_p99 s.Hist.s_max)
  in
  let hists =
    List.filter_map
      (fun (s : Hist.summary) ->
        match s.Hist.s_name with
        | "chain_len" -> hist "chain_len" s
        | "snap_dwell_cycles" -> hist "snap_dwell" s
        | "lock_retries" -> hist "lock_retries" s
        | _ -> None)
      r.Obs.hists
  in
  (* Reclamation-health diagnostics that are gauges, not counters: the
     bounded-walk saturation count (PR 5) matters whenever non-zero. *)
  let gauges =
    List.filter_map
      (fun (name, v) ->
        match name with
        | "diag_walk_saturated" when v <> 0 ->
            Some (Printf.sprintf "walk_saturation=%d" v)
        | _ -> None)
      r.Obs.gauges
  in
  String.concat " " (counters @ hists @ gauges)
