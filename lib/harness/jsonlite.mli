(** A deliberately tiny strict-JSON parser, used to validate the files
    the observability layer emits (stats reports, Chrome traces) without
    adding a JSON dependency.  Not a general-purpose library: no
    streaming, whole document in memory. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

val parse : string -> t
(** @raise Error with a byte offset on malformed input. *)

val parse_result : string -> (t, string) result

val parse_file : string -> (t, string) result

val member : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

val to_list : t -> t list option

val to_string : t -> string option

val to_number : t -> float option

val escape : string -> string
(** Escape a string body for embedding in emitted JSON. *)
