(* Benchmark harness reproducing every figure and table of the paper's
   evaluation (§8), scaled to this machine.  See EXPERIMENTS.md for the
   mapping and for paper-vs-measured discussion.

   Usage:  main.exe [--full|--ci] [--json FILE] [--label TEXT] [section ...]
   Sections: fig8a fig8b fig8c fig8d fig8dlist fig9 fig10 fig11 fig12
             direct_stores extra_skiplist shard_sweep txn micro
             (default: all)

   --json FILE additionally records one machine-readable row per
   benchmark cell (throughput, latency percentiles, chain census, space)
   and writes a Harness.Bench_json document — the BENCH_PR7.json format
   that `make bench-check` diffs against the committed baseline.  --ci is
   a deliberately tiny scale for that gating run. *)

module D = Harness.Driver
module T = Harness.Table
module V = Verlib

type scale = {
  n : int;
  n_dlist : int;
  threads : int;
  duration : float;
  repeats : int;
}

let quick = { n = 10_000; n_dlist = 500; threads = 4; duration = 0.25; repeats = 1 }

let full = { n = 100_000; n_dlist = 1_000; threads = 4; duration = 1.0; repeats = 3 }

(* Regression-gate scale: small enough that the JSON subset finishes in
   well under a minute on one core, large enough that chains actually
   form and the census has something to audit. *)
let ci = { n = 2_000; n_dlist = 300; threads = 2; duration = 0.08; repeats = 1 }

let scale = ref quick

(* --- machine-readable rows (BENCH json) -------------------------------- *)

let json_path : string option ref = ref None

let json_label = ref ""

let json_rows : Harness.Bench_json.row list ref = ref []

let recording () = !json_path <> None

(* Representative per-op latency: the lat_* histogram with the most
   samples (the dominant operation of the mix), as microseconds. *)
let lat_percentiles (r : D.result) =
  let module H = Verlib.Obs.Hist in
  let best =
    List.fold_left
      (fun acc (s : H.summary) ->
        let is_lat =
          String.length s.H.s_name >= 4 && String.sub s.H.s_name 0 4 = "lat_"
        in
        if not (is_lat && s.H.s_count > 0) then acc
        else
          match acc with
          | Some (b : H.summary) when b.H.s_count >= s.H.s_count -> acc
          | _ -> Some s)
      None r.D.obs.Verlib.Obs.hists
  in
  match best with
  | None -> (0., 0.)
  | Some s ->
      (Verlib.Hwclock.to_us s.H.s_p50, Verlib.Hwclock.to_us s.H.s_p99)

let row_of_result ~figure ~label (r : D.result) =
  let p50, p99 = lat_percentiles r in
  let ci_ f = match r.D.census with Some c -> f c | None -> 0 in
  {
    Harness.Bench_json.r_figure = figure;
    r_label = label;
    r_mops = r.D.total_mops;
    r_p50_us = p50;
    r_p99_us = p99;
    r_chain_max = ci_ (fun c -> c.Verlib.Chainscan.c_max_chain);
    r_chain_p99 = ci_ Verlib.Chainscan.chain_p99;
    r_indirect_links = ci_ (fun c -> c.Verlib.Chainscan.c_indirect_links);
    r_reclaimable = ci_ (fun c -> c.Verlib.Chainscan.c_reclaimable);
    r_violations = ci_ (fun c -> c.Verlib.Chainscan.c_violation_count);
    r_space_bytes = r.D.space_bytes_per_entry;
    r_retries = 0;
    r_shed = 0;
    r_giveups = 0;
    r_walk_saturation = 0;
    r_phases = [];
    r_alloc_bytes_per_op = r.D.alloc_bytes_per_op;
    r_gc_minor = r.D.gc_minor;
    r_gc_major = r.D.gc_major;
  }

let record ~figure ~label r =
  if recording () then json_rows := row_of_result ~figure ~label r :: !json_rows

let base_spec map =
  let s = !scale in
  {
    (D.default_spec map) with
    n = s.n;
    duration = s.duration;
    repeats = s.repeats;
    groups =
      [ { D.g_count = s.threads; g_update_percent = 20; g_query = Workload.Opgen.Multifinds 16 } ];
    (* When emitting JSON rows, every run also samples latencies and
       takes a quiescent final census so the rows carry the §4-§5
       mechanism numbers, not just Mops. *)
    lat_sample = (if recording () then 64 else 0);
    census = recording ();
  }

let with_updates spec pct =
  {
    spec with
    D.groups = List.map (fun g -> { g with D.g_update_percent = pct }) spec.D.groups;
  }

(* The versioned-pointer implementation series of Figure 8. *)
let vptr_series =
  V.Vptr.[ Plain; Indirect; No_shortcut; Ind_on_need; Rec_once ]

let series_for (module M : Dstruct.Map_intf.MAP) =
  List.filter M.supports_mode vptr_series

let run_row ?figure ?label spec =
  let r = D.run spec in
  (match (figure, label) with
   | Some figure, Some label -> record ~figure ~label r
   | _ -> ());
  r.D.total_mops

(* --- Figure 8: versioned pointer implementations ----------------------- *)

let fig8_panel ~figure ~title ~map ~xs ~make_spec ~xlabel =
  let module M = (val map : Dstruct.Map_intf.MAP) in
  let series = series_for map in
  let header = xlabel :: List.map V.Vptr.mode_name series in
  let rows =
    List.map
      (fun x ->
        string_of_int x
        :: List.map
             (fun mode ->
               T.mops
                 (run_row ~figure
                    ~label:(Printf.sprintf "%s%d %s" xlabel x (V.Vptr.mode_name mode))
                    { (make_spec x) with D.mode = mode }))
             series)
      xs
  in
  T.print ~title ~header rows

let fig8a () =
  let spec = base_spec (module Dstruct.Btree) in
  fig8_panel ~figure:"fig8a" ~title:"Figure 8a: btree, throughput (Mop/s) vs update %"
    ~map:(module Dstruct.Btree)
    ~xs:[ 0; 5; 20; 50; 100 ]
    ~make_spec:(fun pct -> with_updates spec pct)
    ~xlabel:"update%"

let fig8b () =
  let spec = base_spec (module Dstruct.Btree) in
  let sizes = if !scale == full then [ 1_000; 10_000; 100_000; 1_000_000 ] else [ 1_000; 10_000; 100_000 ] in
  fig8_panel ~figure:"fig8b" ~title:"Figure 8b: btree, throughput (Mop/s) vs size"
    ~map:(module Dstruct.Btree)
    ~xs:sizes
    ~make_spec:(fun n -> { spec with D.n })
    ~xlabel:"size"

let fig8c () =
  let spec = base_spec (module Dstruct.Arttree) in
  fig8_panel ~figure:"fig8c" ~title:"Figure 8c: arttree, throughput (Mop/s) vs update %"
    ~map:(module Dstruct.Arttree)
    ~xs:[ 0; 5; 20; 50; 100 ]
    ~make_spec:(fun pct -> with_updates spec pct)
    ~xlabel:"update%"

let fig8d () =
  let spec = base_spec (module Dstruct.Btree) in
  let module M = Dstruct.Btree in
  let thetas = [ (0, 0.); (50, 0.5); (75, 0.75); (90, 0.9); (99, 0.99) ] in
  let series = series_for (module Dstruct.Btree) in
  let header = "zipf(%)" :: List.map V.Vptr.mode_name series in
  let rows =
    List.map
      (fun (label, theta) ->
        Printf.sprintf "0.%02d" label
        :: List.map
             (fun mode -> T.mops (run_row { spec with D.mode; theta }))
             series)
      thetas
  in
  T.print ~title:"Figure 8d: btree, throughput (Mop/s) vs Zipfian parameter" ~header rows

let fig8dlist () =
  let spec = { (base_spec (module Dstruct.Dlist)) with D.n = !scale.n_dlist } in
  fig8_panel ~figure:"fig8dlist"
    ~title:"Figure 8 (dlist panel): dlist, throughput (Mop/s) vs update %"
    ~map:(module Dstruct.Dlist)
    ~xs:[ 0; 20; 50 ]
    ~make_spec:(fun pct -> with_updates spec pct)
    ~xlabel:"update%"

(* --- Figure 9: timestamp schemes on the hash table --------------------- *)

let fig9 () =
  let spec = base_spec (module Dstruct.Hashtable) in
  let schemes = V.Stamp.all_schemes in
  let header = "update%" :: List.map V.Stamp.scheme_name schemes in
  let rows =
    List.map
      (fun pct ->
        string_of_int pct
        :: List.map
             (fun scheme ->
               T.mops
                 (run_row ~figure:"fig9"
                    ~label:(Printf.sprintf "update%%%d %s" pct (V.Stamp.scheme_name scheme))
                    { (with_updates spec pct) with D.scheme }))
             schemes)
      [ 0; 5; 20; 50; 100 ]
  in
  T.print
    ~title:"Figure 9: hashtable, timestamp schemes, throughput (Mop/s) vs update %"
    ~header rows;
  (* companion: clock increments per scheme at 50% updates, showing the
     contention each scheme induces *)
  let rows2 =
    List.map
      (fun scheme ->
        let r = D.run { (with_updates spec 50) with D.scheme } in
        [
          V.Stamp.scheme_name scheme;
          T.mops r.D.total_mops;
          string_of_int r.D.increments;
          string_of_int r.D.aborts;
        ])
      schemes
  in
  T.print ~title:"Figure 9 companion: scheme behaviour at 50% updates"
    ~header:[ "scheme"; "Mop/s"; "clock increments"; "optimistic aborts" ] rows2

(* --- Figure 10: range queries vs other range-queriable structures ------ *)

let fig10 () =
  let s = !scale in
  let groups rq_size =
    [
      { D.g_count = 1; g_update_percent = 100; g_query = Workload.Opgen.Finds };
      {
        D.g_count = max 1 (s.threads - 1);
        g_update_percent = 0;
        g_query = Workload.Opgen.Ranges rq_size;
      };
    ]
  in
  let contenders =
    [
      ("btree (Verlib)", Harness.Registry.find "btree", V.Vptr.Ind_on_need);
      ("btree (non-vers.)", Harness.Registry.find "btree", V.Vptr.Plain);
      ("arttree (Verlib)", Harness.Registry.find "arttree", V.Vptr.Ind_on_need);
      ("vbst (validated RQ)", Harness.Registry.find "vbst", V.Vptr.Plain);
      ("coarse (RW-locked)", Harness.Registry.find "coarse", V.Vptr.Plain);
    ]
  in
  (* Dispatch on the typed capability: only Ordered_range structures can
     sit in a range-query figure (an Unordered contender would raise). *)
  let contenders =
    List.filter
      (fun (_, map, _) ->
        let module M = (val map : Dstruct.Map_intf.MAP) in
        match M.range_capability with
        | Dstruct.Map_intf.Ordered_range -> true
        | Dstruct.Map_intf.Unordered -> false)
      contenders
  in
  List.iter
    (fun rq_size ->
      let rows =
        List.map
          (fun (label, map, mode) ->
            let spec =
              { (base_spec map) with D.mode; groups = groups rq_size }
            in
            let r = D.run spec in
            let upd, rq =
              match r.D.group_mops with [ u; q ] -> (u, q) | _ -> (0., 0.)
            in
            [ label; T.mops (upd *. 1000.); T.mops (rq *. 1000.); T.mops r.D.total_mops ])
          contenders
      in
      T.print
        ~title:
          (Printf.sprintf
             "Figure 10: range queries of expected size %d (1 update thread, %d RQ threads)"
             rq_size (max 1 (s.threads - 1)))
        ~header:[ "structure"; "updates Kop/s"; "RQs Kop/s"; "total Mop/s" ]
        rows)
    [ 16; 256; 4096 ]

(* --- Figure 11: scalability / oversubscription ------------------------- *)

let fig11 () =
  let thread_counts = [ 1; 2; 4; 8 ] in
  let make map label mode lock_mode =
    ( label,
      fun threads ->
        let spec =
          {
            (base_spec map) with
            D.mode;
            lock_mode;
            theta = 0.99;
            groups =
              [ { D.g_count = threads; g_update_percent = 5; g_query = Workload.Opgen.Finds } ];
          }
        in
        run_row spec )
  in
  let series =
    [
      make (module Dstruct.Btree) "btree lock-free" V.Vptr.Ind_on_need Flock.Lock.Lock_free;
      make (module Dstruct.Btree) "btree blocking" V.Vptr.Ind_on_need Flock.Lock.Blocking;
      make (module Dstruct.Arttree) "arttree lock-free" V.Vptr.Ind_on_need Flock.Lock.Lock_free;
      make (module Dstruct.Arttree) "arttree blocking" V.Vptr.Ind_on_need Flock.Lock.Blocking;
      make (module Dstruct.Vbst) "vbst (blocking baseline)" V.Vptr.Plain Flock.Lock.Blocking;
    ]
  in
  let header = "threads" :: List.map fst series in
  let rows =
    List.map
      (fun th -> string_of_int th :: List.map (fun (_, f) -> T.mops (f th)) series)
      thread_counts
  in
  T.print
    ~title:
      "Figure 11: scalability, 5% updates 95% finds, Zipf 0.99 (1 hardware core: >1 \
       thread is oversubscribed)"
    ~header rows

(* --- Figure 12: space --------------------------------------------------- *)

let fig12 () =
  let n = min !scale.n 50_000 in
  let structures =
    [ "arttree"; "btree"; "hashtable"; "dlist"; "vbst"; "coarse" ]
  in
  let measure name mode =
    let map = Harness.Registry.find name in
    let module M = (val map : Dstruct.Map_intf.MAP) in
    if not (M.supports_mode mode) then None
    else begin
      V.reset ();
      let n = if name = "dlist" then min n 2_000 else n in
      let t = M.create ~mode ~n_hint:n () in
      let gen =
        Workload.Opgen.create ~n ~update_percent:100 ~query:Workload.Opgen.Finds ()
      in
      Workload.Opgen.fill gen (Workload.Splitmix.create 7) ~insert:(fun k v ->
          M.insert t k v);
      let entries = M.size t in
      let bytes = Harness.Space.bytes_per_entry ~root:(Obj.repr t) ~entries in
      if recording () then
        json_rows :=
          {
            Harness.Bench_json.r_figure = "fig12";
            r_label = Printf.sprintf "%s %s" name (V.Vptr.mode_name mode);
            r_mops = 0.;
            r_p50_us = 0.;
            r_p99_us = 0.;
            r_chain_max = 0;
            r_chain_p99 = 0;
            r_indirect_links = 0;
            r_reclaimable = 0;
            r_violations = 0;
            r_space_bytes = bytes;
            r_retries = 0;
            r_shed = 0;
            r_giveups = 0;
            r_walk_saturation = 0;
            r_phases = [];
            r_alloc_bytes_per_op = 0.;
            r_gc_minor = 0;
            r_gc_major = 0;
          }
          :: !json_rows;
      Some bytes
    end
  in
  let fmt = function Some b -> Printf.sprintf "%.1f" b | None -> "-" in
  let rows =
    List.map
      (fun name ->
        [
          name;
          fmt (measure name V.Vptr.Plain);
          fmt (measure name V.Vptr.Ind_on_need);
        ])
      structures
  in
  T.print
    ~title:(Printf.sprintf "Figure 12: space, bytes per entry (n = %d)" n)
    ~header:[ "structure"; "Non-versioned"; "Versioned" ]
    rows

(* --- §8.1 Direct stores ablation ---------------------------------------- *)

let direct_stores () =
  let spec = with_updates (base_spec (module Dstruct.Btree)) 50 in
  let on = run_row { spec with D.direct_stores = true } in
  let off = run_row { spec with D.direct_stores = false } in
  T.print ~title:"Direct stores (§8.1): btree, 50% updates"
    ~header:[ "store implementation"; "Mop/s" ]
    [
      [ "store_norace (direct)"; T.mops on ];
      [ "load-then-CAS"; T.mops off ];
      [ "improvement"; Printf.sprintf "%.1f%%" ((on -. off) /. off *. 100.) ];
    ]

(* --- Extra: skiplist, where indirection-on-need earns its keep ---------- *)

(* Linking a node into an upper skip-list level stores an already-claimed
   object — Figure 1's metadata-sharing situation — so unlike the other
   structures, this one creates indirect links on inserts, not just
   deletes.  The table shows throughput alongside the §5 mechanism
   counters: links created, links shortcut out, chains truncated. *)
let extra_skiplist () =
  let spec = base_spec (module Dstruct.Skiplist) in
  let series = series_for (module Dstruct.Skiplist) in
  let rows =
    List.map
      (fun mode ->
        let r = D.run { spec with D.mode } in
        record ~figure:"extra_skiplist" ~label:(V.Vptr.mode_name mode) r;
        [
          V.Vptr.mode_name mode;
          T.mops r.D.total_mops;
          string_of_int (V.Stats.total V.Stats.indirect_created);
          string_of_int (V.Stats.total V.Stats.shortcuts);
          string_of_int (V.Stats.total V.Stats.truncations);
        ])
      series
  in
  T.print
    ~title:"Extra: skiplist (fully versioned towers), 20% updates + multifinds"
    ~header:[ "mode"; "Mop/s"; "links created"; "shortcuts"; "truncations" ]
    rows

(* --- Shard sweep: partitioned maps, snapshot-atomic cross-shard reads --- *)

(* The scale-out figure: one logical map over 1/2/4/8 shards
   ([Dstruct.Sharded]), same mixed workload as Figure 8 (20% updates +
   multifinds).  Every multifind crosses shards under ONE snapshot, so
   the sweep measures what partitioning costs when atomicity is an O(1)
   timestamp read — the row set `make bench-check` gates, and the
   embedded counterpart of the served sweep in `make serve-baseline`.
   Shard count 1 is the bare base structure (the combinator absent, not
   merely degenerate), making the x1 column a direct overhead
   reference. *)
let shard_sweep () =
  let bases = [ "btree"; "hashtable" ] in
  let counts = [ 1; 2; 4; 8 ] in
  let header = "shards" :: bases in
  let rows =
    List.map
      (fun c ->
        string_of_int c
        :: List.map
             (fun base ->
               let spec_name =
                 if c = 1 then base else Printf.sprintf "sharded-%s:%d" base c
               in
               let map = Harness.Registry.find spec_name in
               T.mops
                 (run_row ~figure:"shard_sweep"
                    ~label:(Printf.sprintf "%s x%d" base c)
                    (base_spec map)))
             bases)
      counts
  in
  T.print
    ~title:
      "Shard sweep: throughput (Mop/s) vs shard count, 20% updates + multifinds \
       (cross-shard multi-point reads under one snapshot)"
    ~header rows

(* --- Bechamel microbenchmarks ------------------------------------------- *)

type uobj = { v : int; meta : uobj V.Vtypes.meta }

(* --- Transactions: OCC commit throughput --------------------------------- *)

(* Multi-domain transaction throughput over a btree-backed Txn.Store:
   each domain runs back-to-back read-modify-write transactions of
   [tsize] ops (DEL+PUT rewrite pairs over distinct random keys, the
   bank transfer shape).  Contention is set by the key universe — "low"
   spreads the transactions over the full scale-n key space, "high"
   packs them onto 64 keys so write sets collide constantly.  Per cell:
   r_mops = committed transactions (in Mops units, to match the shared
   row schema), r_retries = validation conflicts the retry loop
   absorbed, r_giveups = aborts past the retry budget.  The figure
   gates through bench_diff like the structural ones: an OCC regression
   shows up either as a commit-rate collapse or as a retry explosion. *)
let txn_fig () =
  let module M = Dstruct.Btree in
  let threads = !scale.threads and duration = !scale.duration in
  let cell ~label ~universe ~tsize =
    V.reset ();
    let h = M.create ~n_hint:universe () in
    let store = Txn.Store.create (module M) h in
    for k = 1 to universe do
      ignore (M.insert h k k)
    done;
    let r0 = Txn.validation_retries () and a0 = Txn.aborts () in
    let stop = Atomic.make false in
    let committed = Atomic.make 0 and aborted = Atomic.make 0 in
    let worker wid () =
      let rng = Workload.Splitmix.create (0x7a11 + (wid * 7919)) in
      let rec distinct acc n =
        if n = 0 then acc
        else
          let k = 1 + Workload.Splitmix.below rng universe in
          if List.mem k acc then distinct acc n
          else distinct (k :: acc) (n - 1)
      in
      while not (Atomic.get stop) do
        let ops =
          distinct [] (tsize / 2)
          |> List.concat_map (fun k ->
                 [ Txn.Del k; Txn.Put (k, Workload.Splitmix.below rng 1_000) ])
        in
        match Txn.exec store ops with
        | Txn.Committed _ -> Atomic.incr committed
        | Txn.Aborted _ -> Atomic.incr aborted
      done
    in
    let t0 = Unix.gettimeofday () in
    let ds = List.init threads (fun w -> Domain.spawn (worker w)) in
    Unix.sleepf duration;
    Atomic.set stop true;
    List.iter Domain.join ds;
    let elapsed = Unix.gettimeofday () -. t0 in
    let commits = Atomic.get committed in
    let retries = Txn.validation_retries () - r0 in
    let aborts = Txn.aborts () - a0 in
    if recording () then
      json_rows :=
        {
          Harness.Bench_json.r_figure = "txn";
          r_label = label;
          r_mops = float_of_int commits /. elapsed /. 1e6;
          r_p50_us = 0.;
          r_p99_us = 0.;
          r_chain_max = 0;
          r_chain_p99 = 0;
          r_indirect_links = 0;
          r_reclaimable = 0;
          r_violations = 0;
          r_space_bytes = 0.;
          r_retries = retries;
          r_shed = 0;
          r_giveups = aborts;
          r_walk_saturation = 0;
          r_phases = [];
          r_alloc_bytes_per_op = 0.;
          r_gc_minor = 0;
          r_gc_major = 0;
        }
        :: !json_rows;
    [
      label;
      Printf.sprintf "%.1f" (float_of_int commits /. elapsed /. 1e3);
      string_of_int retries;
      string_of_int (Atomic.get aborted);
    ]
  in
  let rows =
    [
      cell ~label:"t2-low" ~universe:!scale.n ~tsize:2;
      cell ~label:"t2-high" ~universe:64 ~tsize:2;
      cell ~label:"t8-low" ~universe:!scale.n ~tsize:8;
      cell ~label:"t8-high" ~universe:64 ~tsize:8;
    ]
  in
  T.print
    ~title:
      (Printf.sprintf
         "Transactions: OCC commit rate, %d domain(s) (t<N> = ops/txn; \
          low/high = contention)"
         threads)
    ~header:[ "cell"; "kcommit/s"; "val retries"; "aborts" ]
    rows

let micro () =
  let open Bechamel in
  let mk v = { v; meta = V.Vtypes.fresh_meta () } in
  let desc mode = V.Vptr.make_desc ~meta_of:(fun o -> o.meta) ~mode in
  V.reset ();
  let mk_ptr mode = V.Vptr.make (desc mode) (Some (mk 1)) in
  let load_test mode =
    let p = mk_ptr mode in
    Test.make ~name:("load " ^ V.Vptr.mode_name mode) (Staged.stage (fun () -> V.Vptr.load p))
  in
  let store_test mode =
    let p = mk_ptr mode in
    Test.make
      ~name:("store " ^ V.Vptr.mode_name mode)
      (Staged.stage (fun () -> V.Vptr.store_norace p (Some (mk 2))))
  in
  let cas_test mode =
    let p = mk_ptr mode in
    Test.make
      ~name:("cas " ^ V.Vptr.mode_name mode)
      (Staged.stage (fun () ->
           let cur = V.Vptr.load p in
           ignore (V.Vptr.cas p cur (Some (mk 2)))))
  in
  let snapshot_test scheme =
    V.Stamp.set_scheme scheme;
    let p = mk_ptr V.Vptr.Ind_on_need in
    Test.make
      ~name:("with_snapshot " ^ V.Stamp.scheme_name scheme)
      (Staged.stage (fun () -> V.with_snapshot (fun () -> V.Vptr.load p)))
  in
  let modes = V.Vptr.[ Plain; Indirect; Ind_on_need ] in
  let tests =
    Test.make_grouped ~name:"vptr" ~fmt:"%s %s"
      (List.map load_test modes @ List.map store_test modes @ List.map cas_test modes)
  in
  let snap_tests =
    Test.make_grouped ~name:"snapshot" ~fmt:"%s %s"
      (List.map snapshot_test V.Stamp.[ Query_ts; Hw_ts; Opt_ts ])
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  let report title test =
    let raw = Benchmark.all cfg [ instance ] test in
    let res = Analyze.all ols instance raw in
    let rows = ref [] in
    Hashtbl.iter
      (fun name o ->
        let est =
          match Analyze.OLS.estimates o with
          | Some [ e ] -> Printf.sprintf "%.1f" e
          | Some _ | None -> "-"
        in
        rows := [ name; est ] :: !rows)
      res;
    T.print ~title ~header:[ "operation"; "ns/op" ]
      (List.sort compare !rows)
  in
  report "Microbenchmark: versioned pointer primitive operations" tests;
  report "Microbenchmark: with_snapshot overhead by scheme" snap_tests;
  V.Stamp.set_scheme V.Stamp.Query_ts

(* --- main ---------------------------------------------------------------- *)

let sections =
  [
    ("fig8a", fig8a);
    ("fig8b", fig8b);
    ("fig8c", fig8c);
    ("fig8d", fig8d);
    ("fig8dlist", fig8dlist);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("direct_stores", direct_stores);
    ("extra_skiplist", extra_skiplist);
    ("shard_sweep", shard_sweep);
    ("txn", txn_fig);
    ("micro", micro);
  ]

let scale_name () =
  if !scale == full then "full" else if !scale == ci then "ci" else "quick"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec parse wanted = function
    | [] -> List.rev wanted
    | "--full" :: rest ->
        scale := full;
        parse wanted rest
    | "--ci" :: rest ->
        scale := ci;
        parse wanted rest
    | "--json" :: path :: rest ->
        json_path := Some path;
        parse wanted rest
    | "--label" :: l :: rest ->
        json_label := l;
        parse wanted rest
    | ("--json" | "--label") :: [] ->
        prerr_endline "--json/--label need an argument";
        exit 2
    | a :: rest -> parse (a :: wanted) rest
  in
  let wanted = parse [] args in
  let wanted = if wanted = [] then List.map fst sections else wanted in
  Printf.printf
    "VERLIB reproduction benchmarks (%s scale: n=%d, %d threads, %.2fs/run, %d repeat(s))\n"
    (scale_name ())
    !scale.n !scale.threads !scale.duration !scale.repeats;
  Printf.printf "Machine: %d recommended domain(s) — see EXPERIMENTS.md for scaling notes.\n"
    (Domain.recommended_domain_count ());
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f ->
          let t0 = Unix.gettimeofday () in
          f ();
          (* Mechanism trail: counter/histogram deltas of the section's
             last run (counters are reset per run), so the recorded
             benchmark output carries the quantities the paper's claims
             are actually about, not just Mops. *)
          Printf.printf "[obs %s] %s\n" name
            (Harness.Obs_report.one_line (V.Obs.capture ()));
          Printf.printf "[%s done in %.1fs]\n%!" name (Unix.gettimeofday () -. t0)
      | None -> Printf.eprintf "unknown section %S\n" name)
    wanted;
  match !json_path with
  | None -> ()
  | Some path ->
      let doc =
        Harness.Bench_json.make_doc ~label:!json_label ~scale:(scale_name ())
          (List.rev !json_rows)
      in
      Harness.Bench_json.write_file path doc;
      Printf.printf "[json] %d row(s) written to %s\n%!"
        (List.length doc.Harness.Bench_json.d_rows)
        path
