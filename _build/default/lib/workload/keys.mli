(** Key universes, following §8: "We use a universe U of 2n distinct,
    uniform random 64-bit keys.  Keys for all operations (including
    initialization) are drawn randomly from U, which ensures that the size
    of the data structure remains approximately n throughout". *)

type t

val create : ?seed:int -> n:int -> unit -> t
(** Universe of [2 * n] distinct random non-negative keys. *)

val universe_size : t -> int

val nth : t -> int -> int
(** The key at index [i] (indices are what {!Zipf} samples). *)

val random : t -> Splitmix.t -> int
(** Uniform draw from the universe. *)

val zipf : t -> Zipf.t -> Splitmix.t -> int
(** Skewed draw (popular indices map to fixed popular keys). *)
