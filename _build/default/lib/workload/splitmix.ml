type t = { mutable state : int }

let golden_gamma = 0x1E3779B97F4A7C15

let create seed = { state = seed * 0x2545F4914F6CDD1D }

let mix z =
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14B06A1E3769D9 in
  z lxor (z lsr 31)

let next t =
  t.state <- t.state + golden_gamma;
  (* mask to non-negative; note [1 lsl 62] would overflow 63-bit ints *)
  mix t.state land max_int

let below t n =
  if n <= 0 then invalid_arg "Splitmix.below";
  next t mod n

let span = Float.of_int max_int +. 1.

let float t = Float.of_int (next t) /. span
