(* YCSB-style Zipfian generator (Gray et al., "Quickly generating
   billion-record synthetic databases").  For theta = 0 we special-case
   the uniform distribution, matching the paper's parameter sweep. *)

type t = {
  n : int;
  theta_ : float;
  alpha : float;
  zetan : float;
  eta : float;
  half_pow : float; (* 1 + 0.5^theta *)
}

let zeta_static n theta =
  (* Exact for small n; Euler–Maclaurin tail approximation beyond, which
     keeps construction cheap for the 10M-key experiments. *)
  let exact = min n 10_000 in
  let s = ref 0. in
  for i = 1 to exact do
    s := !s +. (1. /. Float.pow (Float.of_int i) theta)
  done;
  if n > exact then begin
    (* integral of x^-theta from exact to n *)
    let a = Float.of_int exact and b = Float.of_int n in
    let tail =
      if Float.abs (theta -. 1.) < 1e-9 then Float.log (b /. a)
      else (Float.pow b (1. -. theta) -. Float.pow a (1. -. theta)) /. (1. -. theta)
    in
    s := !s +. tail
  end;
  !s

let create ?(theta = 0.99) n =
  if n <= 0 then invalid_arg "Zipf.create";
  if theta < 0. || theta >= 1. then invalid_arg "Zipf.create: theta in [0,1)";
  if theta = 0. then { n; theta_ = 0.; alpha = 0.; zetan = 0.; eta = 0.; half_pow = 0. }
  else begin
    let zetan = zeta_static n theta in
    let zeta2 = zeta_static 2 theta in
    let alpha = 1. /. (1. -. theta) in
    let eta =
      (1. -. Float.pow (2. /. Float.of_int n) (1. -. theta)) /. (1. -. (zeta2 /. zetan))
    in
    { n; theta_ = theta; alpha; zetan; eta; half_pow = 1. +. Float.pow 0.5 theta }
  end

let theta t = t.theta_

let sample t rng =
  if t.theta_ = 0. then Splitmix.below rng t.n
  else begin
    let u = Splitmix.float rng in
    let uz = u *. t.zetan in
    if uz < 1. then 0
    else if uz < t.half_pow then 1
    else
      let idx =
        Float.to_int
          (Float.of_int t.n *. Float.pow ((t.eta *. u) -. t.eta +. 1.) t.alpha)
      in
      if idx >= t.n then t.n - 1 else if idx < 0 then 0 else idx
  end
