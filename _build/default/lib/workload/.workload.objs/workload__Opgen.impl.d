lib/workload/opgen.ml: Array Keys Splitmix Zipf
