lib/workload/splitmix.ml: Float
