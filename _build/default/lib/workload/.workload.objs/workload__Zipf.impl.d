lib/workload/zipf.ml: Float Splitmix
