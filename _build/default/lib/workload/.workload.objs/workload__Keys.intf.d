lib/workload/keys.mli: Splitmix Zipf
