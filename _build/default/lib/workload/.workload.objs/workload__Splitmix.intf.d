lib/workload/splitmix.mli:
