lib/workload/opgen.mli: Keys Splitmix
