lib/workload/zipf.mli: Splitmix
