lib/workload/keys.ml: Array Hashtbl Splitmix Zipf
