(** Operation-mix generator for the paper's workloads (§8): a percentage
    of updates (inserts and deletes in equal numbers) with the remainder
    being finds, range queries of a given expected size, or multi-finds of
    a given arity; keys drawn uniformly or Zipfian from the universe. *)

type op =
  | Insert of int * int
  | Delete of int
  | Find of int
  | Range of int * int  (** bounds chosen for a given expected result size *)
  | Multifind of int array

type query_kind = Finds | Ranges of int  (** expected size *) | Multifinds of int
(** arity *)

type t

val create :
  ?theta:float ->
  ?seed:int ->
  n:int ->
  update_percent:int ->
  query:query_kind ->
  unit ->
  t
(** [n] is the intended structure size; the universe has [2n] keys.
    [update_percent] of operations are updates (half inserts, half
    deletes); the rest are queries of kind [query].  [theta] selects the
    Zipfian parameter (0 = uniform, the default). *)

val universe : t -> Keys.t

val next : t -> Splitmix.t -> op

val fill : t -> Splitmix.t -> insert:(int -> int -> bool) -> unit
(** Initialise a structure to size ~n "by running a mix of inserts and
    deletes on an initially empty data structure" (§8): inserts the first
    n universe keys in random order. *)
