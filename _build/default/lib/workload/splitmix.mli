(** SplitMix64 pseudo-random generator (Steele, Lea & Flood), truncated to
    OCaml's 63-bit ints.

    Each benchmark thread owns one generator seeded from a distinct
    stream, so random-number generation never becomes a point of
    inter-thread contention (unlike [Stdlib.Random]'s shared default
    state). *)

type t

val create : int -> t
(** [create seed]; distinct seeds give independent streams. *)

val next : t -> int
(** Next value, uniform over non-negative 62-bit integers. *)

val below : t -> int -> int
(** [below t n]: uniform in [0, n). *)

val float : t -> float
(** Uniform in [0, 1). *)
