type t = { keys : int array }

(* Distinct random keys: draw from the full 62-bit space, dedup via a
   hash table.  Collisions are vanishingly rare at benchmark sizes. *)
let create ?(seed = 42) ~n () =
  let rng = Splitmix.create seed in
  let m = 2 * n in
  let seen = Hashtbl.create (2 * m) in
  let keys = Array.make m 0 in
  let i = ref 0 in
  while !i < m do
    let k = Splitmix.next rng in
    if (not (Hashtbl.mem seen k)) && k > 0 then begin
      Hashtbl.add seen k ();
      keys.(!i) <- k;
      incr i
    end
  done;
  { keys }

let universe_size t = Array.length t.keys

let nth t i = t.keys.(i)

let random t rng = t.keys.(Splitmix.below rng (Array.length t.keys))

let zipf t z rng = t.keys.(Zipf.sample z rng)
