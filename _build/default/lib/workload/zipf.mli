(** Zipfian index sampler, as used by YCSB and by the paper's skewed
    workloads (§8: "Keys are drawn from Zipfian distribution with
    parameter ranging from 0 (uniform) to .99 (highly skewed)").

    Uses the Gray et al. rejection-inversion-free approximation from the
    YCSB generator: O(1) sampling after O(n) setup (amortised via the
    closed-form zeta approximation for large n). *)

type t

val create : ?theta:float -> int -> t
(** [create ~theta n]: sampler over indices [0, n).  [theta = 0.] is the
    uniform distribution; [theta] close to 1 is highly skewed.  Default
    [theta = 0.99]. *)

val theta : t -> float

val sample : t -> Splitmix.t -> int
(** Draw an index in [0, n).  Index 0 is the most popular. *)
