type op =
  | Insert of int * int
  | Delete of int
  | Find of int
  | Range of int * int
  | Multifind of int array

type query_kind = Finds | Ranges of int | Multifinds of int

type t = {
  keys : Keys.t;
  zipf : Zipf.t;
  update_percent : int;
  query : query_kind;
  range_width : int;
}

(* Keys live in [0, 2^62); note [1 lsl 62] would overflow OCaml's 63-bit
   ints, so the space is expressed as [max_int] (= 2^62 - 1). *)
let key_space = max_int

let create ?(theta = 0.) ?(seed = 42) ~n ~update_percent ~query () =
  if update_percent < 0 || update_percent > 100 then
    invalid_arg "Opgen.create: update_percent";
  let keys = Keys.create ~seed ~n () in
  let zipf = Zipf.create ~theta (Keys.universe_size keys) in
  (* With ~n of the 2n universe keys present, present keys have expected
     spacing key_space / n, so a window of s * key_space / n contains ~s
     present keys. *)
  let range_width =
    match query with Ranges s -> key_space / n * s | Finds | Multifinds _ -> 0
  in
  { keys; zipf; update_percent; query; range_width }

let universe t = t.keys

let pick t rng = Keys.zipf t.keys t.zipf rng

let next t rng =
  let r = Splitmix.below rng 100 in
  if r < t.update_percent then
    if r land 1 = 0 then Insert (pick t rng, Splitmix.next rng)
    else Delete (pick t rng)
  else
    match t.query with
    | Finds -> Find (pick t rng)
    | Ranges _ ->
        let a = pick t rng in
        let b = if a > max_int - t.range_width then max_int else a + t.range_width in
        Range (a, b)
    | Multifinds k -> Multifind (Array.init k (fun _ -> pick t rng))

let fill t rng ~insert =
  let n = Keys.universe_size t.keys / 2 in
  (* random insertion order over the first n universe keys *)
  let order = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = Splitmix.below rng (i + 1) in
    let tmp = order.(i) in
    order.(i) <- order.(j);
    order.(j) <- tmp
  done;
  Array.iter
    (fun i ->
      let k = Keys.nth t.keys i in
      ignore (insert k (k land 0xFFFF)))
    order
