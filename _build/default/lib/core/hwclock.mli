(** Hardware timestamp source backing the HwTS scheme: [rdtsc] on x86,
    [CLOCK_MONOTONIC] elsewhere.  Values are positive, monotone and
    strictly above {!Stamp.zero}. *)

val now : unit -> int
