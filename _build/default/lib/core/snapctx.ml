let none = min_int

type ctx = { mutable local : int; mutable optimistic : bool; mutable aborted : bool }

let key : ctx Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { local = none; optimistic = false; aborted = false })

let ctx () = Domain.DLS.get key

let local_stamp () = (ctx ()).local

let set_local_stamp s = (ctx ()).local <- s

let clear_local_stamp () = (ctx ()).local <- none

let optimistic () = (ctx ()).optimistic

let set_optimistic b = (ctx ()).optimistic <- b

let aborted () = (ctx ()).aborted

let clear_aborted () = (ctx ()).aborted <- false

let note_equal_stamp () =
  let c = ctx () in
  if c.optimistic then c.aborted <- true
