(** Global timestamp schemes (paper §7 and §8 "Timestamps").

    Versioning needs a global notion of time: every successful update's
    version gets a stamp, and every snapshot gets a stamp; a snapshot sees
    exactly the versions with stamps at or before its own.  The schemes
    differ in {e who} advances the clock:

    - [Query_ts]  — incremented by each snapshotted query (WBB+ default);
    - [Update_ts] — incremented by each successful update (classic MVCC);
    - [Hw_ts]     — never incremented; reads the hardware clock ({!Hwclock});
    - [Tl2_ts]    — TL2-style low-contention clock: queries increment, but a
                    failed increment adopts the concurrent winner's bump;
    - [Opt_ts]    — the paper's optimistic scheme (Algorithm 7): queries run
                    without incrementing and only bump-and-retry when they
                    meet a version stamped equal to their own stamp;
    - [No_stamp]  — never incremented; snapshots are not linearizable
                    (negative control in Figure 9).

    Pick the scheme before building any versioned structure; stamps from
    different schemes are not comparable. *)

type scheme = Query_ts | Update_ts | Hw_ts | Tl2_ts | Opt_ts | No_stamp

val scheme_name : scheme -> string

val all_schemes : scheme list

val set_scheme : scheme -> unit
(** Select the global scheme and reset the software clock.  Call only at a
    quiescent point (no structure built under the previous scheme may be
    used afterwards). *)

val scheme : unit -> scheme

val tbd : int
(** "To be determined": the stamp of a version that has been installed but
    not yet timestamped.  Negative, so it is below every real stamp. *)

val zero : int
(** Stamp of initial versions; below every stamp the clock can produce. *)

val read : unit -> int
(** Current clock value.  Used by set-stamp helping: a version whose stamp
    is [tbd] is stamped with [read ()]. *)

val floor : unit -> int
(** A lower bound on every stamp {!take} can return from now on: the done
    stamp must never exceed this.  [read () - 1] under [Update_ts] and
    [Hw_ts] (whose takers return one below the clock), [read ()]
    otherwise. *)

val take : unit -> int
(** Acquire a snapshot stamp, advancing the clock if the scheme says so.
    For [Opt_ts] this is the {e pessimistic} (re-run) path; optimistic runs
    use {!read}. *)

val on_update : unit -> unit
(** Hook invoked after each successful versioned CAS; advances the clock
    under [Update_ts]. *)

val bump : unit -> unit
(** Advance the clock by one (single CAS attempt, as in the paper's
    [increment_timestamp]); used by the optimistic abort path. *)

val bump_from : int -> unit
(** [bump_from s] is Algorithm 7's [increment_timestamp(stamp)]: CAS the
    clock from [s] to [s + 1]; a failure means the clock already moved past
    [s], which is all the caller needs. *)

val is_optimistic : unit -> bool
(** Whether snapshotted queries should first run optimistically
    ([Opt_ts]). *)

val increments : unit -> int
(** Number of successful clock increments since the last [set_scheme]
    (for experiments comparing scheme contention). *)
