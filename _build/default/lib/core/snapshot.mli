(** Atomic snapshots over versioned pointers.

    [with_snapshot f] runs the read-only thunk [f] so that every
    {!Vptr.load} it performs returns the value its location held at one
    fixed point in the linearization order, situated between the call's
    invocation and response.  Under the optimistic timestamp scheme
    ([Stamp.Opt_ts], Algorithm 7) [f] may be executed twice, so it must be
    repeatable — natural for read-only queries. *)

val with_snapshot : (unit -> 'a) -> 'a
(** Nested calls share the outer snapshot's stamp. *)

exception Aborted
(** Raised by {!check_abort}; private to the optimistic machinery. *)

val check_abort : unit -> unit
(** Optional cooperative early exit for long queries (§7's optimization):
    inside an optimistic snapshot that has already been invalidated, raises
    {!Aborted}, causing [with_snapshot] to re-run the thunk pessimistically
    without finishing the doomed pass. *)

val active : unit -> bool
(** Whether the calling domain is inside a [with_snapshot]. *)

val current_stamp : unit -> int option
