(** Low-overhead event counters for experiments and tests.

    Counters are per-domain slots summed on read, so increments are plain
    stores (racy only against the reader, which tolerates it). *)

type counter

val make : string -> counter

val name : counter -> string

val incr : counter -> unit

val add : counter -> int -> unit

val total : counter -> int

val reset : counter -> unit

(** Events instrumented throughout the library. *)

val indirect_created : counter
(** Indirect version links allocated (cas/store fell back to a [Clink]). *)

val direct_installed : counter
(** Versions installed without indirection. *)

val shortcuts : counter
(** Indirect links spliced out by [shortcut]. *)

val snapshot_aborts : counter
(** Optimistic snapshot executions that had to re-run (Algorithm 7). *)

val truncations : counter
(** Version chains severed behind a no-longer-needed version (the GC
    analogue of EBR reclaiming old versions). *)

val snapshots : counter

val reset_all : unit -> unit
