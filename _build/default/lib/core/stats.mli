(** Low-overhead event counters for experiments and tests.

    Counters are per-domain slots summed on read, so increments are plain
    stores (racy only against the reader, which tolerates it).

    {b Quiescence contract:} [total], [reset] and [reset_all] are exact
    only when every incrementing domain is quiesced (e.g. joined).
    Concurrent reads are safe but may miss in-flight increments, and a
    [reset] racing a writer can silently lose that writer's increment —
    harness code must reset between runs, not during them. *)

type counter

val make : string -> counter

val name : counter -> string

val incr : counter -> unit

val add : counter -> int -> unit

val total : counter -> int

val reset : counter -> unit

val all : unit -> counter list
(** All registered counters, in creation order. *)

(** Events instrumented throughout the library. *)

val indirect_created : counter
(** Indirect version links allocated (cas/store fell back to a [Clink]). *)

val direct_installed : counter
(** Versions installed without indirection. *)

val shortcuts : counter
(** Indirect links spliced out by [shortcut]. *)

val snapshot_aborts : counter
(** Optimistic snapshot executions that had to re-run (Algorithm 7). *)

val truncations : counter
(** Version chains severed behind a no-longer-needed version (the GC
    analogue of EBR reclaiming old versions). *)

val snapshots : counter

val reset_all : unit -> unit
(** Reset every counter {e and} the telemetry layer (histograms, trace
    rings — see [Flock.Telemetry]).  Subject to the quiescence contract
    above. *)
