(** Representation types shared by all versioned-pointer modes.

    Each versioned location holds a {!chain}: either a direct value
    ([Cval]) whose version metadata lives on the pointed-to object itself
    (the indirection-free case of §5), or an indirect version link
    ([Clink]) carrying its own metadata (the WBB+ fallback).  The [meta]
    record is what user objects embed by "inheriting [versioned]" in the
    C++ API: a timestamp (initially {!Stamp.tbd}) and a pointer to the
    previous version.

    C++ Verlib steals a pointer bit to distinguish direct from indirect;
    OCaml cannot tag pointers, so the distinction is the [chain]
    constructor.  [Cval] wraps the value in every mode — including the
    non-versioned baseline — so cross-mode comparisons stay fair. *)

type 'a meta = {
  stamp : int Atomic.t;
      (** [Stamp.tbd] until the version is installed and timestamped; set
          exactly once thereafter (set-stamp helping, §4). *)
  mutable prev : 'a chain;
      (** The superseded version.  Written before the version is published
          and immutable afterwards, so plain (non-atomic) access is
          data-race free. *)
}

and 'a chain = Cval of 'a option | Clink of 'a link

and 'a link = {
  lmeta : 'a meta;
  lvalue : 'a option;
  ldirect : 'a chain;
      (** The canonical [Cval lvalue] cell installed when this link is
          shortcut out.  Precomputed so that the shortcutter and any CAS
          that raced with it agree on one physically-unique cell — the role
          the stripped pointer plays in the C++ implementation. *)
}

let fresh_meta () = { stamp = Atomic.make Stamp.tbd; prev = Cval None }

let make_link ~stamp ~prev value =
  let v = Cval value in
  { lmeta = { stamp = Atomic.make stamp; prev }; lvalue = value; ldirect = v }

(* Equality of user values: versioned pointers compare pointees by
   physical identity, as the C++ library compares raw pointers. *)
let opt_eq a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> x == y
  | None, Some _ | Some _, None -> false

let chain_value = function Cval v -> v | Clink l -> l.lvalue

let chain_meta meta_of = function
  | Clink l -> Some l.lmeta
  | Cval (Some o) -> Some (meta_of o)
  | Cval None -> None
