lib/core/vptr.ml: Atomic Buffer Done_stamp Flock Printf Snapctx Stamp Stats Vtypes
