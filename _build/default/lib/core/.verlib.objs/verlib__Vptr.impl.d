lib/core/vptr.ml: Atomic Buffer Done_stamp Flock Obs Printf Snapctx Stamp Stats Vtypes
