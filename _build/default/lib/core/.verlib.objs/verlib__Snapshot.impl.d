lib/core/snapshot.ml: Done_stamp Fun Snapctx Stamp Stats
