lib/core/snapshot.ml: Done_stamp Fun Hwclock Obs Snapctx Stamp Stats
