lib/core/stamp.ml: Atomic Hwclock Obs
