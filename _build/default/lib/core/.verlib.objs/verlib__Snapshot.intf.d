lib/core/snapshot.mli:
