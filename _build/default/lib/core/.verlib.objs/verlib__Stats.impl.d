lib/core/stats.ml: Array Flock List Mutex
