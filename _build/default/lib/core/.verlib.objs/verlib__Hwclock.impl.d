lib/core/hwclock.ml:
