lib/core/hwclock.ml: Float
