lib/core/obs.mli: Flock
