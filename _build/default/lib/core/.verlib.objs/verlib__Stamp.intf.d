lib/core/stamp.mli:
