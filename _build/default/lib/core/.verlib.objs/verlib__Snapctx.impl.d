lib/core/snapctx.ml: Domain
