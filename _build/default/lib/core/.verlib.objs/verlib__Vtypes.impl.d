lib/core/vtypes.ml: Atomic Stamp
