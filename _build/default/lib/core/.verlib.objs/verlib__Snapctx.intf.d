lib/core/snapctx.mli:
