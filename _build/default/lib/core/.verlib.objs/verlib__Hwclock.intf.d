lib/core/hwclock.mli:
