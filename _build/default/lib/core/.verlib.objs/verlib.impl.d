lib/core/verlib.ml: Done_stamp Flock Hwclock Obs Snapctx Snapshot Stamp Stats Vptr Vtypes
