lib/core/verlib.ml: Done_stamp Flock Hwclock Snapctx Snapshot Stamp Stats Vptr Vtypes
