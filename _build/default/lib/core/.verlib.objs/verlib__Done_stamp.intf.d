lib/core/done_stamp.mli:
