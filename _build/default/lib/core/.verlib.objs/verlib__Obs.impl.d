lib/core/obs.ml: Array Buffer Float Flock Fun Hwclock List Printf Stats
