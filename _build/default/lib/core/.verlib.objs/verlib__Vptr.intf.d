lib/core/vptr.mli: Vtypes
