lib/core/done_stamp.ml: Array Atomic Domain Flock Stamp
