lib/core/stats.mli:
