(** Per-domain snapshot context.

    While a domain runs inside [with_snapshot], its chosen stamp is held
    here (the paper's thread-local [local_stamp]) together with the
    optimistic-execution flags of Algorithm 7.  {!Vptr.load} consults this
    on every read; {!Snapshot} sets and clears it. *)

val none : int
(** Sentinel meaning "not inside a snapshot" (the paper uses -1; we use
    [min_int] so it can never collide with [Stamp.tbd]). *)

val local_stamp : unit -> int
(** The calling domain's snapshot stamp, or {!none}. *)

val set_local_stamp : int -> unit

val clear_local_stamp : unit -> unit

val optimistic : unit -> bool

val set_optimistic : bool -> unit

val aborted : unit -> bool

val clear_aborted : unit -> unit

val note_equal_stamp : unit -> unit
(** Called by the snapshot read path when it accepts a version whose stamp
    equals the reader's stamp; aborts the run if it is optimistic
    (Algorithm 7, line 5). *)
