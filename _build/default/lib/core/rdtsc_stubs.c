/* Hardware timestamp for the HwTS scheme.
 *
 * On x86-64 this is the rdtsc cycle counter the paper uses; elsewhere we
 * fall back to CLOCK_MONOTONIC nanoseconds, which preserves the property
 * the algorithm needs: a cheap, globally monotone clock read.  The value
 * is masked to 62 bits so it always fits a non-negative OCaml int. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
static uint64_t hw_ticks(void) { return (uint64_t)__rdtsc(); }
#else
static uint64_t hw_ticks(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (uint64_t)ts.tv_sec * 1000000000ull + (uint64_t)ts.tv_nsec;
}
#endif

CAMLprim value caml_verlib_rdtsc(value unit)
{
    (void)unit;
    return Val_long((long)(hw_ticks() & 0x3fffffffffffffffull));
}

/* Hardware-tick to wall-clock calibration for trace export: ticks per
 * microsecond, measured once against CLOCK_MONOTONIC over a ~5 ms sleep
 * and cached.  Only called on the (cold) export path, never while an
 * experiment is being timed. */
CAMLprim value caml_verlib_cycles_per_us(value unit)
{
    static double cached = 0.0;
    (void)unit;
    if (cached <= 0.0) {
        struct timespec t0, t1;
        struct timespec req = { 0, 5 * 1000 * 1000 }; /* 5 ms */
        uint64_t c0, c1;
        clock_gettime(CLOCK_MONOTONIC, &t0);
        c0 = hw_ticks();
        nanosleep(&req, NULL);
        c1 = hw_ticks();
        clock_gettime(CLOCK_MONOTONIC, &t1);
        {
            double us = (double)(t1.tv_sec - t0.tv_sec) * 1e6 +
                        (double)(t1.tv_nsec - t0.tv_nsec) / 1e3;
            cached = us > 0.0 ? (double)(c1 - c0) / us : 1.0;
        }
        if (cached <= 0.0)
            cached = 1.0;
    }
    return caml_copy_double(cached);
}
