/* Hardware timestamp for the HwTS scheme.
 *
 * On x86-64 this is the rdtsc cycle counter the paper uses; elsewhere we
 * fall back to CLOCK_MONOTONIC nanoseconds, which preserves the property
 * the algorithm needs: a cheap, globally monotone clock read.  The value
 * is masked to 62 bits so it always fits a non-negative OCaml int. */

#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
static uint64_t hw_ticks(void) { return (uint64_t)__rdtsc(); }
#else
static uint64_t hw_ticks(void)
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return (uint64_t)ts.tv_sec * 1000000000ull + (uint64_t)ts.tv_nsec;
}
#endif

CAMLprim value caml_verlib_rdtsc(value unit)
{
    (void)unit;
    return Val_long((long)(hw_ticks() & 0x3fffffffffffffffull));
}
