(** The [done_stamp]: a global lower bound on the stamp of every ongoing
    (and, by monotonicity of the clock, every future) snapshot, never
    exceeding the global clock.  An indirect version link whose stamp is at
    most the done stamp can be shortcut out, because no snapshot will ever
    need to traverse past it (§5, "Shortcutting").

    The paper maintains this with epoch-based reclamation; we maintain it
    directly with a per-domain announcement array: each domain announces
    its snapshot stamp for the duration of its [with_snapshot].  [get]
    serves a cached value refreshed periodically; the cache only ever lags
    {e below} the true bound, which is the safe direction. *)

val announce : int -> unit
(** Publish the calling domain's snapshot stamp.  Must happen before the
    snapshot reads any versioned pointer. *)

val withdraw : unit -> unit

val get : unit -> int
(** A stamp [d] such that every ongoing or future snapshot has stamp >= [d]
    and the global clock is >= [d]. *)

val refresh : unit -> int
(** Recompute the bound now (bypassing the cache) and return it; [get]
    calls this every few dozen invocations per domain. *)

val reset : unit -> unit
(** Drop the cached bound.  Required whenever the clock is reset
    ([Stamp.set_scheme]): stamps from different schemes are incomparable,
    and a stale high cache would licence unsound shortcuts.  Call only at
    quiescence, like [set_scheme] itself. *)
