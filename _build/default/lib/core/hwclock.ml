external rdtsc : unit -> int = "caml_verlib_rdtsc" [@@noalloc]

external cycles_per_us_stub : unit -> float = "caml_verlib_cycles_per_us"

(* Bias by the startup reading so stamps stay comfortably small while
   remaining strictly positive (0 is the reserved "initial version"
   stamp). *)
let origin = rdtsc () - 1

let now () =
  let t = rdtsc () - origin in
  if t > 0 then t else 1

(* Calibrated against CLOCK_MONOTONIC on first call (~5 ms, cached in
   the stub); for converting tick intervals to wall time in reports. *)
let cycles_per_us () = cycles_per_us_stub ()

let to_us cycles = Float.of_int cycles /. cycles_per_us ()
