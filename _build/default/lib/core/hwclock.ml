external rdtsc : unit -> int = "caml_verlib_rdtsc" [@@noalloc]

(* Bias by the startup reading so stamps stay comfortably small while
   remaining strictly positive (0 is the reserved "initial version"
   stamp). *)
let origin = rdtsc () - 1

let now () =
  let t = rdtsc () - origin in
  if t > 0 then t else 1
