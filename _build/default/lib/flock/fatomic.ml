type 'a box = { v : 'a }

type 'a t = 'a box Atomic.t

let make v = Atomic.make { v }

let load t = (Idem.once (fun () -> Atomic.get t)).v

let store t x =
  if Idem.in_frame () then begin
    (* All helpers agree on the pre-state box and share one new box, so the
       CAS lands exactly once.  If it fails, another helper already
       performed this same store. *)
    let old_box = Idem.once (fun () -> Atomic.get t) in
    let new_box = Idem.once (fun () -> { v = x }) in
    ignore (Atomic.compare_and_set t old_box new_box)
  end
  else Atomic.set t { v = x }

let cam t ~old_v ~new_v =
  let old_box = Idem.once (fun () -> Atomic.get t) in
  if old_box.v == old_v then begin
    let new_box = Idem.once (fun () -> { v = new_v }) in
    ignore (Atomic.compare_and_set t old_box new_box)
  end

let unsafe_plain_store t x = Atomic.set t { v = x }
