lib/flock/lock.mli:
