lib/flock/idem.mli:
