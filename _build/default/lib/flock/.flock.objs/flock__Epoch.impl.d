lib/flock/epoch.ml: Array Atomic Domain Fun List Mutex Registry Telemetry
