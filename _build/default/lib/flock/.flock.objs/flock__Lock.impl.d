lib/flock/lock.ml: Atomic Backoff Idem Obj Telemetry
