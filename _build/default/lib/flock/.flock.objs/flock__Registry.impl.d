lib/flock/registry.ml: Array Atomic Domain
