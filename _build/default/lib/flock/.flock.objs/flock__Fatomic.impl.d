lib/flock/fatomic.ml: Atomic Idem
