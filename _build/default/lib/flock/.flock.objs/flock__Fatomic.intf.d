lib/flock/fatomic.mli:
