lib/flock/backoff.ml: Domain Thread
