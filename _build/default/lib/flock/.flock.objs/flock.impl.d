lib/flock/flock.ml: Backoff Epoch Fatomic Idem Lock Registry Telemetry
