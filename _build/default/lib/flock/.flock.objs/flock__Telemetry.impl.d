lib/flock/telemetry.ml: Array Atomic Float List Mutex Registry
