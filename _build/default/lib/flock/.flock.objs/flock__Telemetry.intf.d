lib/flock/telemetry.mli:
