lib/flock/epoch.mli:
