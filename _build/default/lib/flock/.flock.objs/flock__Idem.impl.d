lib/flock/idem.ml: Array Atomic Domain List Obj
