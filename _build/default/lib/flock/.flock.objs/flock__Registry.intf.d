lib/flock/registry.mli:
