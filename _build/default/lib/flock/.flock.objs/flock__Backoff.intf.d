lib/flock/backoff.mli:
