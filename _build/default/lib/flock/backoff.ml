type t = { mutable shift : int; limit : int }

let create ?(limit = 10) () = { shift = 0; limit }

let reset t = t.shift <- 0

let once t =
  if t.shift >= t.limit then Thread.yield ()
  else begin
    let spins = 1 lsl t.shift in
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done;
    t.shift <- t.shift + 1
  end
