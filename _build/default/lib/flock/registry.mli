(** Per-domain slot registry.

    Assigns each domain a small dense integer id on first use and releases
    it when the domain exits.  The id indexes fixed-size announcement arrays
    used by the epoch collector ({!Epoch}) and by Verlib's done-stamp
    computation.  Ids are recycled, so the arrays stay bounded by the peak
    number of live domains, capped at {!max_slots}. *)

val max_slots : int
(** Upper bound on simultaneously registered domains (128, matching the
    OCaml runtime's default domain limit). *)

val my_id : unit -> int
(** The calling domain's slot id, registering it if needed. *)

val iter_ids : (int -> unit) -> unit
(** Apply a function to every currently registered slot id.  Slots being
    concurrently registered or released may or may not be visited; callers
    must tolerate this (announcement scans do). *)

val registered_count : unit -> int
(** Number of currently registered domains (racy snapshot, for stats). *)
