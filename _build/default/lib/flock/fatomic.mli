(** Idempotent atomic cells ([flck::atomic<T>] in the paper).

    Mutable shared locations that are safe to access from inside lock-free
    critical sections: loads are logged so every helper of a critical
    section observes the same value, and stores/CAMs take effect exactly
    once even when replayed by many helpers.

    Implementation: the cell holds an immutable one-field box.  Each logical
    write allocates a fresh box (idempotently, via {!Idem.once}), so boxes
    are physically unique and a machine CAS from the logged old box to the
    shared new box succeeds for exactly one helper — giving exactly-once
    stores without version tags, because the GC rules out ABA on box
    addresses.  Outside critical sections the operations reduce to plain
    atomic accesses. *)

type 'a t

val make : 'a -> 'a t

val load : 'a t -> 'a
(** Atomic read; inside a critical section the result is logged so all
    helpers agree. *)

val store : 'a t -> 'a -> unit
(** Atomic write, exactly-once under helping.  Inside critical sections the
    caller must hold a lock that prevents write-write races on this cell
    (the FLOCK contract); concurrent stores from distinct critical sections
    to the same cell are not linearized. *)

val cam : 'a t -> old_v:'a -> new_v:'a -> unit
(** Compare-and-modify: atomically set the cell to [new_v] if its current
    value is physically equal to [old_v].  Does not report success — that
    restriction is what makes it implementable idempotently (FLOCK). *)

val unsafe_plain_store : 'a t -> 'a -> unit
(** Non-idempotent store, bypassing the log.  Only for provably benign
    helping races (cf. Theorem 6.2 of the paper). *)
