(** Exponential backoff for contended retry loops.

    On an oversubscribed machine (more domains than cores) spinning without
    yielding starves the lock holder, so after a few rounds of [cpu_relax]
    the backoff yields the processor to the OS scheduler. *)

type t

val create : ?limit:int -> unit -> t
(** [create ?limit ()] returns a fresh backoff state.  [limit] bounds the
    exponential growth of the spin count (default 10, i.e. at most [2^10]
    relax operations per round). *)

val once : t -> unit
(** Spin for the current round's duration, then double it (up to the limit).
    Yields to the OS scheduler once the spin count saturates. *)

val reset : t -> unit
(** Forget accumulated contention history. *)
