let max_slots = 128

(* [used.(i)] is true while a live domain owns slot [i].  Slots are claimed
   with CAS so that domains racing to register never share an id. *)
let used : bool Atomic.t array = Array.init max_slots (fun _ -> Atomic.make false)

let key : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let claim () =
  let rec scan i =
    if i >= max_slots then failwith "Flock.Registry: too many simultaneous domains"
    else if (not (Atomic.get used.(i))) && Atomic.compare_and_set used.(i) false true
    then i
    else scan (i + 1)
  in
  scan 0

let release id = Atomic.set used.(id) false

let my_id () =
  match Domain.DLS.get key with
  | Some id -> id
  | None ->
      let id = claim () in
      Domain.DLS.set key (Some id);
      Domain.at_exit (fun () -> release id);
      id

let iter_ids f =
  for i = 0 to max_slots - 1 do
    if Atomic.get used.(i) then f i
  done

let registered_count () =
  let n = ref 0 in
  iter_ids (fun _ -> incr n);
  !n
