(** Space measurement for Figure 12: bytes per entry of a populated
    structure, via [Obj.reachable_words] on the structure root.  Includes
    node metadata, versioning metadata and the keys/values themselves,
    like the paper's accounting. *)

val bytes_per_entry : root:Obj.t -> entries:int -> float
