let all : (string * (module Dstruct.Map_intf.MAP)) list =
  [
    ("dlist", (module Dstruct.Dlist));
    ("hashtable", (module Dstruct.Hashtable));
    ("btree", (module Dstruct.Btree));
    ("arttree", (module Dstruct.Arttree));
    ("skiplist", (module Dstruct.Skiplist));
    ("vbst", (module Dstruct.Vbst));
    ("coarse", (module Dstruct.Coarse_map));
  ]

let names = List.map fst all

let find name =
  match List.assoc_opt name all with
  | Some m -> m
  | None ->
      failwith
        (Printf.sprintf "unknown structure %S (expected one of: %s)" name
           (String.concat ", " names))
