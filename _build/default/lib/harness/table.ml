let mops v =
  if v >= 100. then Printf.sprintf "%.0f" v
  else if v >= 10. then Printf.sprintf "%.1f" v
  else if v >= 1. then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.3f" v

let print ?(out = stdout) ~title ~header rows =
  let all = header :: rows in
  let ncols = List.fold_left (fun a r -> max a (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun a r -> match List.nth_opt r c with Some s -> max a (String.length s) | None -> a)
      0 all
  in
  let widths = List.init ncols width in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c w ->
           let s = match List.nth_opt row c with Some s -> s | None -> "" in
           s ^ String.make (w - String.length s) ' ')
         widths)
  in
  Printf.fprintf out "\n== %s ==\n" title;
  Printf.fprintf out "%s\n" (line header);
  Printf.fprintf out "%s\n" (String.make (String.length (line header)) '-');
  List.iter (fun r -> Printf.fprintf out "%s\n" (line r)) rows;
  flush out
