(* A deliberately tiny JSON parser — enough to validate the files the
   observability layer emits (stats reports and Chrome traces) without
   pulling a JSON dependency into the image.  Accepts strict JSON; on
   error reports the byte offset. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Error of string

let fail pos msg = raise (Error (Printf.sprintf "%s at byte %d" msg pos))

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail !pos (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail !pos ("expected " ^ lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail !pos "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail !pos "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail !pos "truncated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char b '"'; advance ()
               | '\\' -> Buffer.add_char b '\\'; advance ()
               | '/' -> Buffer.add_char b '/'; advance ()
               | 'b' -> Buffer.add_char b '\b'; advance ()
               | 'f' -> Buffer.add_char b '\012'; advance ()
               | 'n' -> Buffer.add_char b '\n'; advance ()
               | 'r' -> Buffer.add_char b '\r'; advance ()
               | 't' -> Buffer.add_char b '\t'; advance ()
               | 'u' ->
                   advance ();
                   let cp = hex4 () in
                   (* basic-plane UTF-8 encoding; surrogate pairs are not
                      produced by our emitters, map them to U+FFFD *)
                   if cp < 0x80 then Buffer.add_char b (Char.chr cp)
                   else if cp < 0x800 then begin
                     Buffer.add_char b (Char.chr (0xC0 lor (cp lsr 6)));
                     Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                   end
                   else if cp >= 0xD800 && cp <= 0xDFFF then
                     Buffer.add_string b "\xEF\xBF\xBD"
                   else begin
                     Buffer.add_char b (Char.chr (0xE0 lor (cp lsr 12)));
                     Buffer.add_char b (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
                     Buffer.add_char b (Char.chr (0x80 lor (cp land 0x3F)))
                   end
               | c -> fail !pos (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            Buffer.add_char b c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    if !pos = start then fail start "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail start "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail !pos "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail !pos "expected , or }"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail !pos "expected , or ]"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail !pos "trailing garbage";
  v

let parse_result s = try Ok (parse s) with Error m -> Result.Error m

let parse_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  parse_result s

(* --- accessors -------------------------------------------------------- *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_list = function Arr l -> Some l | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_number = function Num f -> Some f | _ -> None

(* Escape a string for inclusion in emitted JSON (shared by the
   emitters so parse/emit agree on the dialect). *)
let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
