let bytes_per_entry ~root ~entries =
  if entries = 0 then 0.
  else
    let words = Obj.reachable_words root in
    Float.of_int (words * (Sys.word_size / 8)) /. Float.of_int entries
