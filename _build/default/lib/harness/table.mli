(** Aligned-text table printing for benchmark output, paper style. *)

val print :
  ?out:out_channel -> title:string -> header:string list -> string list list -> unit

val mops : float -> string
(** Format a throughput value (Mop/s) with sensible precision. *)
