(** Name-indexed access to the concurrent maps, for CLI tools and the
    benchmark driver. *)

val all : (string * (module Dstruct.Map_intf.MAP)) list

val find : string -> (module Dstruct.Map_intf.MAP)
(** Raises [Not_found] with a helpful message on unknown names. *)

val names : string list
