lib/harness/jsonlite.mli:
