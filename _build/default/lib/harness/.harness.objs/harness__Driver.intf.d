lib/harness/driver.mli: Dstruct Flock Verlib Workload
