lib/harness/obs_report.ml: Buffer Jsonlite List Printf String Table Verlib
