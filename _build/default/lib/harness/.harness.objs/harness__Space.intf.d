lib/harness/space.mli: Obj
