lib/harness/obs_report.mli: Verlib
