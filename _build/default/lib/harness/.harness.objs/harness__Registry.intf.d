lib/harness/registry.mli: Dstruct
