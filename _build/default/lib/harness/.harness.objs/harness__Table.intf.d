lib/harness/table.mli:
