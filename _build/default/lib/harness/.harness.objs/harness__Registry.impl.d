lib/harness/registry.ml: Dstruct List Printf String
