lib/harness/driver.ml: Array Atomic Domain Dstruct Float Flock List Unix Verlib Workload
