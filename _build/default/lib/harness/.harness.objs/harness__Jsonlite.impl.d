lib/harness/jsonlite.ml: Buffer Char List Printf Result String
