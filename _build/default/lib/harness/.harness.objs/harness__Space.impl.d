lib/harness/space.ml: Float Obj Sys
