(** Adaptive radix tree (ART, Leis et al.) over non-negative integer keys,
    versioned — the paper's "first versioned radix tree".

    Keys are treated as 8 big-endian bytes, so in-order traversal yields
    ascending key order and range queries are supported.  Inner nodes
    adapt among three kinds as in §8 ("the arttree is byte-based and has
    three types of internal nodes"):

    - [Small]   — up to 16 children, sorted byte array (ART's N4/N16);
    - [Indexed] — up to 48 children, 256-byte index (N48);
    - [Direct]  — 256 child cells (N256).

    Child cells are versioned pointers; concurrency follows the lock-based
    ART of Leis et al.'s "The ART of Practical Synchronization", adapted
    to copy-on-grow so that queries inside snapshots only ever follow
    versioned cells: storing into an existing (possibly empty) cell locks
    the owning node; adding a new byte to a [Small]/[Indexed] node
    replaces the node under its parent's lock.

    Simplifications vs. the original ART (documented in DESIGN.md): no
    path compression — colliding prefixes produce single-child chains
    (rare under the paper's uniform/Zipfian random keys) — and nodes never
    shrink (deletion empties cells; empty chains are reclaimed only when
    overwritten). *)

include Map_intf.MAP

val debug_dump : t -> unit
