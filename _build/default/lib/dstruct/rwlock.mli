(** Writer-preference reader-writer lock (Mutex + Condition based).

    Used by the comparison baselines only: the Verlib structures never
    need one — that is the point of the paper. *)

type t

val create : unit -> t

val with_read : t -> (unit -> 'a) -> 'a

val with_write : t -> (unit -> 'a) -> 'a
