(** Validated-retry BST — comparison baseline for Figure 10.

    An external (leaf-oriented) binary search tree with fine-grained
    blocking locks for updates and lock-free finds.  Range queries and
    multi-finds follow the classic validation recipe used by non-versioned
    range-queriable structures (EpochBST and friends): read the global
    update counter, traverse, re-read the counter, retry on mismatch,
    escalating to a reader-writer lock after repeated failures so heavy
    update loads cannot starve queries forever.

    This represents the "retry-based linearizable range query" competitor
    class whose throughput collapses as updates increase — the axis the
    paper's Figure 10 compares against.  Versioned-pointer modes are
    ignored ([supports_mode] accepts only [Plain]). *)

include Map_intf.MAP
