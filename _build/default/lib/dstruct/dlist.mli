(** Sorted doubly-linked list with atomic range queries — the paper's
    running example (Algorithm 3).

    Only the [next] pointers are versioned, because queries follow only
    them; [prev] pointers and removal flags are ordinary (idempotent)
    atomics.  Insertion locks the predecessor; removal locks the
    predecessor and the victim.  Works with blocking or lock-free locks
    and with every versioned-pointer mode. *)

include Map_intf.MAP
