lib/dstruct/vbst.mli: Map_intf
