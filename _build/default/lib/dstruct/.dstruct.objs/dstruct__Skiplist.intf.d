lib/dstruct/skiplist.mli: Map_intf
