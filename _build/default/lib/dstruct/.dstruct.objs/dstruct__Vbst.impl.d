lib/dstruct/vbst.ml: Array Atomic Fun List Mutex Printf Rwlock Verlib
