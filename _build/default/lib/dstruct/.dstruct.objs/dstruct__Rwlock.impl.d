lib/dstruct/rwlock.ml: Condition Fun Mutex
