lib/dstruct/dlist.mli: Map_intf
