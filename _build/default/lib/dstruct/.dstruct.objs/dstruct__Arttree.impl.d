lib/dstruct/arttree.ml: Array Flock List Map_intf Option Printf Verlib
