lib/dstruct/hashtable.mli: Map_intf
