lib/dstruct/rwlock.mli:
