lib/dstruct/dlist.ml: Flock List Map_intf Verlib
