lib/dstruct/map_intf.ml: Array Flock List Verlib
