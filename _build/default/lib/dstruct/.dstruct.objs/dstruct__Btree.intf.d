lib/dstruct/btree.mli: Map_intf
