lib/dstruct/coarse_map.mli: Map_intf
