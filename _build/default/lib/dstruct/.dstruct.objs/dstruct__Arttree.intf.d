lib/dstruct/arttree.mli: Map_intf
