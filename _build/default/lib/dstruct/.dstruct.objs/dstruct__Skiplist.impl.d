lib/dstruct/skiplist.ml: Array Domain Flock Hashtbl List Map_intf Printf Verlib Workload
