lib/dstruct/coarse_map.ml: Array Int List Map Rwlock Seq Verlib
