lib/dstruct/btree.ml: Array Flock List Map_intf Option Printf String Verlib
