lib/dstruct/hashtable.ml: Array Flock List Map_intf Verlib
