(** Sorted map as a lazy skip list with versioned bottom-level links.

    Skip lists are the structure class most of the paper's range-query
    competitors use (BundledSkiplist, Jiffy, LeapList).  This one
    demonstrates the library's "version exactly what queries follow"
    principle from §3.1: only the level-0 [next] pointers are versioned —
    snapshots, range queries and multi-finds walk them — while the upper
    index levels are ordinary idempotent atomics used purely as search
    accelerators, like the unversioned [prev] pointers of the paper's
    doubly-linked list.

    Updates follow the lazy-skiplist recipe: the level-0 splice under the
    predecessor's lock is the single linearization point; upper levels are
    linked and unlinked opportunistically afterwards.  Works with blocking
    or lock-free locks; deletions re-record successor nodes, so
    [Rec_once] is unsupported (as for the list). *)

include Map_intf.MAP
