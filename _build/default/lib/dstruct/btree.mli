(** Concurrent (a,b)-tree with versioned child pointers — the OCaml
    counterpart of the paper's FLOCK-derived B-tree, "the first B-tree that
    is lock-free and versioned".

    Design (mirrors §8's description and the constraints of versioned
    pointers):

    - nodes are immutable except for their child {e cells}, which are
      versioned pointers; every update publishes through exactly one cell
      swing, which is its linearization point, so snapshot queries
      traversing only versioned cells are linearizable;
    - a leaf update copies the leaf and swings its cell under the parent's
      lock;
    - structural changes (split, merge, redistribution, root collapse)
      replace whole nodes: the replaced nodes are locked and marked
      removed, their frozen cells are copied into fresh nodes
      (metadata-sharing initialisation, so no indirection is added), and
      one cell swing publishes the new subtree;
    - full or under-occupied children are repaired eagerly during descent,
      so structural repairs never cascade more than one level at a time.

    The tree is relaxed: occupancy minimums are restored opportunistically,
    so transient under-full nodes are legal (checked invariants reflect
    this).  Works with blocking or lock-free locks and all versioned
    pointer modes; in [Rec_once] mode node replacement would re-record
    nodes, so only the paper's recorded-once-friendly operations are
    exercised there (see [supports_mode]). *)

include Map_intf.MAP

val debug_dump : t -> unit
(** Print the tree shape (occupancy, marks) to stdout; debugging aid. *)
