(** Unordered map: hash table with per-bucket immutable arrays, copied on
    update (the asynchronized-concurrency style of David, Guerraoui and
    Trigonakis that §8 adopts).  Purely CAS-based — no locks — so every
    update exercises the versioned pointer's CAS path, including the
    idempotent CAS when called from inside lock-free critical sections.

    The bucket count is fixed at creation ([n_hint] rounded up to a power
    of two, as in the paper); there is no resizing.  [range] is not
    supported; [multifind] is. *)

include Map_intf.MAP
