(** Coarse-grained baseline: an immutable [Stdlib.Map] behind a
    reader-writer lock.  Queries (finds, ranges, multi-finds) are trivially
    linearizable because updates are serialised — the classic design the
    paper's structures outperform.  Versioned-pointer modes are ignored. *)

include Map_intf.MAP
