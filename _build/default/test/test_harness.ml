(* Tests for the benchmark harness: registry, driver end-to-end, table
   formatting and space accounting. *)

let test_registry_complete () =
  List.iter
    (fun name ->
      let (module M : Dstruct.Map_intf.MAP) = Harness.Registry.find name in
      Alcotest.(check string) "name matches" name M.name)
    Harness.Registry.names;
  Alcotest.(check bool) "has all seven structures" true
    (List.length Harness.Registry.names = 7)

let test_registry_unknown () =
  match Harness.Registry.find "nope" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected failure for unknown structure"

let smoke_spec map =
  {
    (Harness.Driver.default_spec map) with
    Harness.Driver.n = 500;
    duration = 0.05;
    groups =
      [
        {
          Harness.Driver.g_count = 2;
          g_update_percent = 50;
          g_query = Workload.Opgen.Finds;
        };
      ];
  }

let test_driver_end_to_end () =
  List.iter
    (fun name ->
      let map = Harness.Registry.find name in
      let r = Harness.Driver.run (smoke_spec map) in
      Alcotest.(check bool)
        (name ^ " made progress")
        true
        (r.Harness.Driver.total_mops > 0.);
      (* fill + balanced insert/delete mix keeps size near n *)
      Alcotest.(check bool)
        (Printf.sprintf "%s size stays near n (%d)" name r.Harness.Driver.final_size)
        true
        (abs (r.Harness.Driver.final_size - 500) < 250))
    Harness.Registry.names

let test_driver_group_split () =
  let map = Harness.Registry.find "hashtable" in
  let spec =
    {
      (smoke_spec map) with
      Harness.Driver.groups =
        [
          { Harness.Driver.g_count = 1; g_update_percent = 100; g_query = Workload.Opgen.Finds };
          { Harness.Driver.g_count = 1; g_update_percent = 0; g_query = Workload.Opgen.Multifinds 4 };
        ];
    }
  in
  let r = Harness.Driver.run spec in
  Alcotest.(check int) "one throughput per group" 2
    (List.length r.Harness.Driver.group_mops);
  List.iter
    (fun m -> Alcotest.(check bool) "each group progressed" true (m > 0.))
    r.Harness.Driver.group_mops

let test_driver_repeats_average () =
  let map = Harness.Registry.find "hashtable" in
  let r = Harness.Driver.run { (smoke_spec map) with Harness.Driver.repeats = 2 } in
  Alcotest.(check bool) "averaged result present" true (r.Harness.Driver.total_mops > 0.)

let test_table_alignment () =
  let buf_name = Filename.temp_file "table" ".txt" in
  let oc = open_out buf_name in
  Harness.Table.print ~out:oc ~title:"t" ~header:[ "a"; "bb" ]
    [ [ "xxx"; "y" ]; [ "1" ] ];
  close_out oc;
  let ic = open_in buf_name in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove buf_name;
  let lines = List.rev !lines in
  Alcotest.(check bool) "has title" true
    (List.exists (fun l -> String.length l > 0 && l.[0] = '=') lines);
  (* all data rows share the same column offset *)
  Alcotest.(check int) "five lines (blank, title, header, rule, rows)" 6
    (List.length lines)

let test_mops_formatting () =
  Alcotest.(check string) "small" "0.123" (Harness.Table.mops 0.1234);
  Alcotest.(check string) "unit" "1.23" (Harness.Table.mops 1.234);
  Alcotest.(check string) "tens" "12.3" (Harness.Table.mops 12.34);
  Alcotest.(check string) "hundreds" "123" (Harness.Table.mops 123.4)

let test_space_accounting () =
  let arr = Array.make 1024 0 in
  let b = Harness.Space.bytes_per_entry ~root:(Obj.repr arr) ~entries:1024 in
  (* an int array costs one word per element plus a header *)
  Alcotest.(check bool) "about one word per entry" true (b >= 8. && b < 9.);
  Alcotest.(check (float 0.01)) "zero entries" 0.
    (Harness.Space.bytes_per_entry ~root:(Obj.repr arr) ~entries:0)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "harness"
    [
      ( "registry",
        [ case "complete" test_registry_complete; case "unknown" test_registry_unknown ] );
      ( "driver",
        [
          case "end-to-end all structures" test_driver_end_to_end;
          case "group split" test_driver_group_split;
          case "repeats averaged" test_driver_repeats_average;
        ] );
      ( "table",
        [ case "alignment" test_table_alignment; case "mops format" test_mops_formatting ] );
      ("space", [ case "accounting" test_space_accounting ]);
    ]
