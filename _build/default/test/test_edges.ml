(* Structure-specific edge cases: node-kind upgrade boundaries in the ART,
   structural repairs in the B-tree (splits, merges, root growth and
   collapse), skip-list tower consistency under churn, and hash-table
   collision handling. *)

module V = Verlib

let reset () = V.reset ()

(* --- Arttree: kind upgrades -------------------------------------------- *)

(* Keys sharing all bytes except the last land in one inner node, whose
   occupancy we drive across the Small(16) and Indexed(48) thresholds. *)
let art_sibling_key i = (0x0A lsl 8) lor i (* byte 6 = 0x0A, byte 7 = i *)

let test_art_upgrades () =
  reset ();
  let t = Dstruct.Arttree.create ~n_hint:64 () in
  let check_all n =
    Dstruct.Arttree.check t;
    for i = 0 to n - 1 do
      Alcotest.(check (option int))
        (Printf.sprintf "key %d present at occupancy %d" i n)
        (Some (i * 10))
        (Dstruct.Arttree.find t (art_sibling_key i))
    done;
    Alcotest.(check int) "size" n (Dstruct.Arttree.size t)
  in
  (* grow through Small -> Indexed -> Direct *)
  for i = 0 to 255 do
    Alcotest.(check bool) "insert" true
      (Dstruct.Arttree.insert t (art_sibling_key i) (i * 10));
    let n = i + 1 in
    if n = 4 || n = 16 || n = 17 || n = 48 || n = 49 || n = 256 then check_all n
  done;
  (* ordered iteration across the Direct node *)
  let keys = List.map fst (Dstruct.Arttree.to_sorted_list t) in
  Alcotest.(check int) "sorted count" 256 (List.length keys);
  Alcotest.(check (list int)) "sorted order"
    (List.init 256 art_sibling_key)
    keys;
  (* delete every other key: cells empty out but stay navigable *)
  for i = 0 to 255 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "delete" true (Dstruct.Arttree.delete t (art_sibling_key i))
  done;
  Dstruct.Arttree.check t;
  Alcotest.(check int) "half left" 128 (Dstruct.Arttree.size t);
  Alcotest.(check int) "range over survivors" 128
    (Dstruct.Arttree.range_count t 0 max_int)

let test_art_deep_collision () =
  reset ();
  let t = Dstruct.Arttree.create ~n_hint:16 () in
  (* keys differing only in the lowest byte force a maximal-depth chain *)
  let base = 0x123456789A lsl 16 in
  Alcotest.(check bool) "first" true (Dstruct.Arttree.insert t (base lor 1) 1);
  Alcotest.(check bool) "second" true (Dstruct.Arttree.insert t (base lor 2) 2);
  Alcotest.(check bool) "dup rejected" false (Dstruct.Arttree.insert t (base lor 1) 9);
  Dstruct.Arttree.check t;
  Alcotest.(check (option int)) "deep find" (Some 2) (Dstruct.Arttree.find t (base lor 2));
  Alcotest.(check int) "deep range" 2 (Dstruct.Arttree.range_count t base (base lor 0xff))

(* --- Btree: structural repairs ------------------------------------------ *)

let test_btree_growth_and_collapse () =
  reset ();
  let t = Dstruct.Btree.create ~n_hint:16 () in
  let n = 5_000 in
  (* ascending insertion maximises splits along the right spine *)
  for k = 1 to n do
    ignore (Dstruct.Btree.insert t k k)
  done;
  Dstruct.Btree.check t;
  Alcotest.(check int) "full" n (Dstruct.Btree.size t);
  (* descending deletion forces merges, borrows and root collapses *)
  for k = n downto 2 do
    ignore (Dstruct.Btree.delete t k);
    if k mod 977 = 0 then Dstruct.Btree.check t
  done;
  Dstruct.Btree.check t;
  Alcotest.(check int) "one left" 1 (Dstruct.Btree.size t);
  Alcotest.(check (option int)) "survivor" (Some 1) (Dstruct.Btree.find t 1);
  (* back up from near-empty *)
  for k = 1 to 200 do
    ignore (Dstruct.Btree.insert t (k * 3) k)
  done;
  Dstruct.Btree.check t

let test_btree_interleaved_churn () =
  reset ();
  let t = Dstruct.Btree.create ~n_hint:64 () in
  let present = Hashtbl.create 512 in
  let rng = Workload.Splitmix.create 31 in
  for _ = 1 to 20_000 do
    let k = Workload.Splitmix.below rng 400 in
    if Workload.Splitmix.below rng 2 = 0 then begin
      let expect = not (Hashtbl.mem present k) in
      Alcotest.(check bool) "insert matches model" expect (Dstruct.Btree.insert t k k);
      Hashtbl.replace present k ()
    end
    else begin
      let expect = Hashtbl.mem present k in
      Alcotest.(check bool) "delete matches model" expect (Dstruct.Btree.delete t k);
      Hashtbl.remove present k
    end
  done;
  Dstruct.Btree.check t;
  Alcotest.(check int) "final size" (Hashtbl.length present) (Dstruct.Btree.size t)

(* --- Skiplist: towers ---------------------------------------------------- *)

let test_skiplist_tower_churn () =
  reset ();
  let t = Dstruct.Skiplist.create ~n_hint:512 () in
  for k = 1 to 2_000 do
    ignore (Dstruct.Skiplist.insert t k k)
  done;
  Dstruct.Skiplist.check t;
  for k = 1 to 2_000 do
    if k mod 3 <> 0 then ignore (Dstruct.Skiplist.delete t k)
  done;
  Dstruct.Skiplist.check t;
  Alcotest.(check int) "survivors" 666 (Dstruct.Skiplist.size t);
  Alcotest.(check int) "range over survivors" 666
    (Dstruct.Skiplist.range_count t min_int max_int |> fun n -> n);
  (* reinsert over the same key space *)
  for k = 1 to 2_000 do
    ignore (Dstruct.Skiplist.insert t k (k * 2))
  done;
  Dstruct.Skiplist.check t;
  Alcotest.(check int) "full again" 2_000 (Dstruct.Skiplist.size t)

let test_skiplist_concurrent_tower_integrity () =
  reset ();
  let t = Dstruct.Skiplist.create ~n_hint:512 () in
  let domains = 4 and per = 3_000 in
  let worker seed () =
    let rng = Workload.Splitmix.create seed in
    for _ = 1 to per do
      let k = 1 + Workload.Splitmix.below rng 300 in
      if Workload.Splitmix.below rng 2 = 0 then ignore (Dstruct.Skiplist.insert t k k)
      else ignore (Dstruct.Skiplist.delete t k)
    done
  in
  let ds = List.init domains (fun i -> Domain.spawn (worker (i + 1))) in
  List.iter Domain.join ds;
  (* towers must be consistent sublists of level 0 at quiescence *)
  Dstruct.Skiplist.check t

(* --- Hashtable: collisions and bucket states ----------------------------- *)

let test_hashtable_bucket_lifecycle () =
  reset ();
  (* tiny table: plenty of collisions per bucket *)
  let t = Dstruct.Hashtable.create ~n_hint:16 () in
  for k = 0 to 199 do
    Alcotest.(check bool) "insert" true (Dstruct.Hashtable.insert t k k)
  done;
  Dstruct.Hashtable.check t;
  Alcotest.(check int) "all present" 200 (Dstruct.Hashtable.size t);
  (* empty every bucket back to null *)
  for k = 0 to 199 do
    Alcotest.(check bool) "delete" true (Dstruct.Hashtable.delete t k)
  done;
  Dstruct.Hashtable.check t;
  Alcotest.(check int) "empty" 0 (Dstruct.Hashtable.size t);
  (* and refill: buckets resurrect from null *)
  for k = 0 to 99 do
    Alcotest.(check bool) "reinsert" true (Dstruct.Hashtable.insert t k (k + 1))
  done;
  Alcotest.(check (option int)) "value" (Some 43) (Dstruct.Hashtable.find t 42)

(* --- Dlist: boundary keys ------------------------------------------------ *)

let test_dlist_boundaries () =
  reset ();
  let t = Dstruct.Dlist.create ~n_hint:8 () in
  Alcotest.check_raises "min_int rejected" (Invalid_argument "Dlist: key out of range")
    (fun () -> ignore (Dstruct.Dlist.insert t min_int 0));
  Alcotest.check_raises "max_int rejected" (Invalid_argument "Dlist: key out of range")
    (fun () -> ignore (Dstruct.Dlist.insert t max_int 0));
  ignore (Dstruct.Dlist.insert t (min_int + 1) 1);
  ignore (Dstruct.Dlist.insert t (max_int - 1) 2);
  Alcotest.(check int) "extremes stored" 2 (Dstruct.Dlist.size t);
  Alcotest.(check int) "full range" 2 (Dstruct.Dlist.range_count t min_int max_int);
  Dstruct.Dlist.check t

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "edges"
    [
      ( "arttree",
        [
          case "kind upgrades 4/16/48/256" test_art_upgrades;
          case "deep byte collision" test_art_deep_collision;
        ] );
      ( "btree",
        [
          case "growth and collapse" test_btree_growth_and_collapse;
          case "interleaved churn vs model" test_btree_interleaved_churn;
        ] );
      ( "skiplist",
        [
          case "tower churn" test_skiplist_tower_churn;
          case "concurrent tower integrity" test_skiplist_concurrent_tower_integrity;
        ] );
      ("hashtable", [ case "bucket lifecycle" test_hashtable_bucket_lifecycle ]);
      ("dlist", [ case "boundary keys" test_dlist_boundaries ]);
    ]
