(* Tests for the workload generators: determinism, distribution sanity,
   operation-mix proportions, and range sizing. *)

module W = Workload

let test_splitmix_deterministic () =
  let a = W.Splitmix.create 7 and b = W.Splitmix.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (W.Splitmix.next a) (W.Splitmix.next b)
  done

let test_splitmix_streams_differ () =
  let a = W.Splitmix.create 7 and b = W.Splitmix.create 8 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if W.Splitmix.next a = W.Splitmix.next b then incr same
  done;
  Alcotest.(check int) "independent streams" 0 !same

let test_splitmix_range () =
  let rng = W.Splitmix.create 3 in
  for _ = 1 to 1000 do
    let v = W.Splitmix.next rng in
    Alcotest.(check bool) "non-negative" true (v >= 0);
    let b = W.Splitmix.below rng 17 in
    Alcotest.(check bool) "below bound" true (b >= 0 && b < 17);
    let f = W.Splitmix.float rng in
    Alcotest.(check bool) "unit float" true (f >= 0. && f < 1.)
  done

let test_splitmix_uniformity () =
  (* chi-square-ish sanity: 10 buckets, 10k draws, each within 30% *)
  let rng = W.Splitmix.create 11 in
  let buckets = Array.make 10 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let b = W.Splitmix.below rng 10 in
    buckets.(b) <- buckets.(b) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 700 || c > 1300 then
        Alcotest.failf "bucket %d has %d of %d draws (expected ~1000)" i c n)
    buckets

let test_zipf_uniform_case () =
  let z = W.Zipf.create ~theta:0. 100 in
  let rng = W.Splitmix.create 5 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let i = W.Zipf.sample z rng in
    counts.(i) <- counts.(i) + 1
  done;
  (* uniform: most popular index should not dominate *)
  let mx = Array.fold_left max 0 counts in
  Alcotest.(check bool) "no hot key under theta=0" true (mx < 400)

let test_zipf_skew () =
  let z = W.Zipf.create ~theta:0.99 1_000 in
  let rng = W.Splitmix.create 5 in
  let counts = Array.make 1_000 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let i = W.Zipf.sample z rng in
    Alcotest.(check bool) "in range" true (i >= 0 && i < 1_000);
    counts.(i) <- counts.(i) + 1
  done;
  (* Zipf 0.99: index 0 should receive a large share, and the top ten
     indices the majority *)
  Alcotest.(check bool) "index 0 hot" true (counts.(0) > n / 20);
  let top10 = Array.fold_left ( + ) 0 (Array.sub counts 0 10) in
  Alcotest.(check bool)
    (Printf.sprintf "top-10 dominate (%d of %d)" top10 n)
    true
    (top10 > n / 4)

let test_zipf_monotone_popularity () =
  let z = W.Zipf.create ~theta:0.9 50 in
  let rng = W.Splitmix.create 9 in
  let counts = Array.make 50 0 in
  for _ = 1 to 50_000 do
    counts.(W.Zipf.sample z rng) <- counts.(W.Zipf.sample z rng) + 1
  done;
  Alcotest.(check bool) "head more popular than tail" true (counts.(0) > counts.(40))

let test_keys_distinct () =
  let u = W.Keys.create ~n:1_000 () in
  Alcotest.(check int) "universe is 2n" 2_000 (W.Keys.universe_size u);
  let seen = Hashtbl.create 4_000 in
  for i = 0 to 1_999 do
    let k = W.Keys.nth u i in
    Alcotest.(check bool) "positive" true (k > 0);
    if Hashtbl.mem seen k then Alcotest.fail "duplicate key in universe";
    Hashtbl.add seen k ()
  done

let test_opgen_mix_proportions () =
  let g = W.Opgen.create ~n:1_000 ~update_percent:40 ~query:W.Opgen.Finds () in
  let rng = W.Splitmix.create 13 in
  let ins = ref 0 and del = ref 0 and fnd = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match W.Opgen.next g rng with
    | W.Opgen.Insert _ -> incr ins
    | W.Opgen.Delete _ -> incr del
    | W.Opgen.Find _ -> incr fnd
    | W.Opgen.Range _ | W.Opgen.Multifind _ -> Alcotest.fail "unexpected query kind"
  done;
  let pct x = 100 * x / n in
  Alcotest.(check bool) "inserts ~20%" true (abs (pct !ins - 20) <= 3);
  Alcotest.(check bool) "deletes ~20%" true (abs (pct !del - 20) <= 3);
  Alcotest.(check bool) "finds ~60%" true (abs (pct !fnd - 60) <= 3)

let test_opgen_range_sizing () =
  (* ranges over a filled structure must contain ~s keys on average *)
  let n = 2_000 in
  let module M = Dstruct.Btree in
  Verlib.reset ();
  let t = M.create ~n_hint:n () in
  let g0 = W.Opgen.create ~n ~update_percent:100 ~query:W.Opgen.Finds () in
  W.Opgen.fill g0 (W.Splitmix.create 1) ~insert:(fun k v -> M.insert t k v);
  List.iter
    (fun s ->
      let g = W.Opgen.create ~n ~update_percent:0 ~query:(W.Opgen.Ranges s) () in
      let rng = W.Splitmix.create 17 in
      let total = ref 0 and cnt = 300 in
      for _ = 1 to cnt do
        match W.Opgen.next g rng with
        | W.Opgen.Range (a, b) ->
            Alcotest.(check bool) "ordered bounds" true (a <= b);
            total := !total + M.range_count t a b
        | _ -> ()
      done;
      let avg = Float.of_int !total /. Float.of_int cnt in
      if avg < Float.of_int s /. 2. || avg > Float.of_int s *. 2. then
        Alcotest.failf "expected ranges of ~%d keys, got average %.1f" s avg)
    [ 8; 64 ]

let test_opgen_multifind_arity () =
  let g = W.Opgen.create ~n:100 ~update_percent:0 ~query:(W.Opgen.Multifinds 7) () in
  let rng = W.Splitmix.create 19 in
  for _ = 1 to 50 do
    match W.Opgen.next g rng with
    | W.Opgen.Multifind ks -> Alcotest.(check int) "arity" 7 (Array.length ks)
    | _ -> Alcotest.fail "expected multifind"
  done

let test_fill_reaches_target_size () =
  let module M = Dstruct.Hashtable in
  Verlib.reset ();
  let n = 1_000 in
  let t = M.create ~n_hint:n () in
  let g = W.Opgen.create ~n ~update_percent:100 ~query:W.Opgen.Finds () in
  W.Opgen.fill g (W.Splitmix.create 2) ~insert:(fun k v -> M.insert t k v);
  Alcotest.(check int) "filled to n" n (M.size t)

let case name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "workload"
    [
      ( "splitmix",
        [
          case "deterministic" test_splitmix_deterministic;
          case "streams differ" test_splitmix_streams_differ;
          case "value ranges" test_splitmix_range;
          case "uniformity" test_splitmix_uniformity;
        ] );
      ( "zipf",
        [
          case "theta=0 is uniform" test_zipf_uniform_case;
          case "theta=.99 is skewed" test_zipf_skew;
          case "popularity decreases" test_zipf_monotone_popularity;
        ] );
      ("keys", [ case "distinct universe" test_keys_distinct ]);
      ( "opgen",
        [
          case "mix proportions" test_opgen_mix_proportions;
          case "range sizing" test_opgen_range_sizing;
          case "multifind arity" test_opgen_multifind_arity;
          case "fill size" test_fill_reaches_target_size;
        ] );
    ]
