test/test_verlib.mli:
