test/test_obs.ml: Alcotest Array Domain Dstruct Filename Flock Harness Hashtbl List Option Printf Sys Verlib Workload
