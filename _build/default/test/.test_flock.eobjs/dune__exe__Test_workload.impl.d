test/test_workload.ml: Alcotest Array Dstruct Float Hashtbl List Printf Verlib Workload
