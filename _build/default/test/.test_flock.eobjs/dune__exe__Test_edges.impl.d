test/test_edges.ml: Alcotest Domain Dstruct Hashtbl List Printf Verlib Workload
