test/test_dstruct.ml: Alcotest Array Atomic Domain Dstruct Flock Hashtbl Int List Map Printf QCheck QCheck_alcotest Random Verlib
