test/test_flock.ml: Alcotest Atomic Domain Flock List Thread
