test/test_harness.ml: Alcotest Array Dstruct Filename Harness List Obj Printf String Sys Workload
