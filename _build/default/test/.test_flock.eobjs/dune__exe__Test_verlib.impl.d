test/test_verlib.ml: Alcotest Atomic Domain Flock List Printf QCheck QCheck_alcotest Thread Verlib
