test/test_flock.mli:
