(* Consistent metric snapshots on the versioned hash table.

   A collector ingests monotonically increasing counters for a set of
   metrics, always writing "requests" before "responses" for each tick.
   Dashboards read both counters in one with_snapshot: the versioned hash
   table guarantees each read pair is a consistent temporal cut, so
   responses can never appear to exceed requests — the invariant this
   example verifies under sustained concurrency (and which fails on the
   non-versioned baseline).

   Run with:  dune exec examples/metrics_cut.exe *)

module Metrics = Dstruct.Hashtable

let requests = 1

let responses = 2

let run mode =
  Verlib.reset ();
  let m = Metrics.create ~mode ~n_hint:64 () in
  ignore (Metrics.insert m requests 0);
  ignore (Metrics.insert m responses 0);
  let stop = Atomic.make false in
  let collector () =
    let tick = ref 1 in
    while not (Atomic.get stop) do
      (* value replacement = delete + insert (no blind updates in the map
         API); each counter individually only ever grows *)
      ignore (Metrics.delete m requests);
      ignore (Metrics.insert m requests !tick);
      ignore (Metrics.delete m responses);
      ignore (Metrics.insert m responses !tick);
      incr tick
    done
  in
  let c = Domain.spawn collector in
  let inversions = ref 0 in
  let reads = 10_000 in
  for _ = 1 to reads do
    match Metrics.multifind m [| requests; responses |] with
    | [| Some req; Some rsp |] ->
        (* responses is written after requests with the same tick, so a
           consistent cut has rsp <= req <= rsp + 1 *)
        if not (rsp <= req && req <= rsp + 1) then incr inversions
    | _ -> () (* mid-replacement: the key is legitimately absent *)
  done;
  Atomic.set stop true;
  Domain.join c;
  !inversions

let () =
  let versioned = run Verlib.Vptr.Ind_on_need in
  Printf.printf "versioned hash table:    %d inconsistent dashboards\n" versioned;
  assert (versioned = 0);
  let plain = run Verlib.Vptr.Plain in
  Printf.printf "non-versioned baseline:  %d inconsistent dashboards (expected > 0 under load)\n"
    plain;
  print_endline "metrics_cut OK"
