examples/quickstart.mli:
