examples/order_book.ml: Domain Dstruct Int List Printf Set String Verlib
