examples/ip_routes.mli:
