examples/ip_routes.ml: Array Atomic Domain Dstruct List Printf Verlib
