examples/quickstart.ml: Array Domain Dstruct Flock List Printf String Verlib
