examples/metrics_cut.ml: Atomic Domain Dstruct Hwclock Obs Printf Stats Verlib
