examples/metrics_cut.ml: Atomic Domain Dstruct Printf Verlib
