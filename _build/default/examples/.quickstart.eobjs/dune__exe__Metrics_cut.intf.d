examples/metrics_cut.mli:
