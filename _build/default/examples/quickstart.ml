(* Quickstart: the paper's running example (§3.1) — a sorted doubly-linked
   list with atomic range queries.

   Run with:  dune exec examples/quickstart.exe *)

module List_map = Dstruct.Dlist

let () =
  (* Configuration knobs (the paper's compile flags): pick the versioned
     pointer implementation, the lock kind and the timestamp scheme. *)
  Verlib.reset ~scheme:Verlib.Stamp.Query_ts ~lock_mode:Flock.Lock.Lock_free ();

  let t = List_map.create ~mode:Verlib.Vptr.Ind_on_need ~n_hint:100 () in

  (* Insert a few keys concurrently. *)
  let writers =
    List.init 4 (fun w ->
        Domain.spawn (fun () ->
            for i = 0 to 24 do
              ignore (List_map.insert t ((i * 4) + w) ((i * 4) + w))
            done))
  in
  List.iter Domain.join writers;
  Printf.printf "inserted %d keys\n" (List_map.size t);

  (* An atomic range query: all keys in [10, 20], guaranteed to reflect
     one single point in the linearization order even under concurrent
     updates. *)
  let in_range = List_map.range t 10 20 in
  Printf.printf "range [10,20]: %s\n"
    (String.concat ", " (List.map (fun (k, _) -> string_of_int k) in_range));

  (* A multi-find: an atomic batch of point lookups. *)
  let found = List_map.multifind t [| 5; 500; 17 |] in
  Array.iteri
    (fun i r ->
      Printf.printf "multifind[%d] = %s\n" i
        (match r with Some v -> string_of_int v | None -> "absent"))
    found;

  (* A bespoke snapshot query through the public API: count even keys and
     odd keys in one atomic view. *)
  let evens, odds =
    Verlib.with_snapshot (fun () ->
        List.fold_left
          (fun (e, o) (k, _) -> if k mod 2 = 0 then (e + 1, o) else (e, o + 1))
          (0, 0) (List_map.range t min_int max_int))
  in
  Printf.printf "snapshot saw %d even and %d odd keys\n" evens odds;
  assert (evens + odds = List_map.size t);
  print_endline "quickstart OK"
