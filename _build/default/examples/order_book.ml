(* Order-book price index on the versioned B-tree.

   Trading gateways insert and cancel limit orders (keyed by price level)
   while a market-data publisher repeatedly takes atomic scans of the top
   of the book.  Because each gateway emits orders at strictly increasing
   sequence-numbered price levels, every linearizable scan must observe a
   prefix of each gateway's emissions — which this example checks, making
   it a live demonstration of the paper's linearizable range queries.

   Run with:  dune exec examples/order_book.exe *)

module Book = Dstruct.Btree

let gateways = 3

let orders_per_gateway = 2_000

(* price level for gateway [g]'s [i]-th order; distinct across gateways *)
let price g i = (i * gateways) + g

let () =
  Verlib.reset ();
  let book = Book.create ~mode:Verlib.Vptr.Ind_on_need ~n_hint:8192 () in
  let gateway g () =
    for i = 0 to orders_per_gateway - 1 do
      ignore (Book.insert book (price g i) ((g * 1_000_000) + i));
      (* cancel a stale order occasionally (keeps deletes in play) *)
      if i mod 7 = 6 then ignore (Book.delete book (price g (i - 3)))
    done
  in
  let scans = ref 0 in
  let anomalies = ref 0 in
  let module IS = Set.Make (Int) in
  let publisher () =
    for _ = 1 to 400 do
      incr scans;
      let view = Book.range book min_int max_int in
      (* Linearizability check: gateways place orders in sequence and only
         ever cancel order i-3 (i ≡ 6 mod 7), i.e. indices ≡ 3 mod 7.  An
         atomic view whose highest order from gateway g is m must therefore
         contain every j <= m with j mod 7 <> 3. *)
      for g = 0 to gateways - 1 do
        let idxs =
          List.filter_map
            (fun (k, _) -> if k mod gateways = g then Some ((k - g) / gateways) else None)
            view
        in
        let top = List.fold_left max (-1) idxs in
        let present = IS.of_list idxs in
        for j = 0 to top do
          if j mod 7 <> 3 && not (IS.mem j present) then incr anomalies
        done
      done
    done
  in
  let ds = List.init gateways (fun g -> Domain.spawn (gateway g)) in
  let p = Domain.spawn publisher in
  publisher ();
  Domain.join p;
  List.iter Domain.join ds;
  Book.check book;
  Printf.printf "order book: %d orders resting, %d atomic scans\n" (Book.size book)
    !scans;
  (* top-of-book query through a snapshot: best (lowest) 5 price levels *)
  let best = ref [] in
  Verlib.with_snapshot (fun () ->
      best :=
        (match Book.range book min_int max_int with
         | a :: b :: c :: d :: e :: _ -> [ a; b; c; d; e ]
         | l -> l));
  Printf.printf "best levels: %s\n"
    (String.concat ", " (List.map (fun (k, _) -> string_of_int k) !best));
  assert (!anomalies = 0);
  print_endline "order_book OK"
