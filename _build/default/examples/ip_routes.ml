(* Routing table on the versioned adaptive radix tree.

   Control-plane threads install and withdraw routes keyed by IPv4
   address (byte-structured keys are the ART's home turf), while the data
   plane resolves batches of flows with atomic multi-finds and scans
   subnets with range queries — each batch an exact snapshot of the
   table, never a mix of old and new routing states.

   Run with:  dune exec examples/ip_routes.exe *)

module Rib = Dstruct.Arttree

let ip a b c d = (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let show_ip k =
  Printf.sprintf "%d.%d.%d.%d" ((k lsr 24) land 0xff) ((k lsr 16) land 0xff)
    ((k lsr 8) land 0xff) (k land 0xff)

let () =
  Verlib.reset ();
  let rib = Rib.create ~mode:Verlib.Vptr.Ind_on_need ~n_hint:4096 () in

  (* static routes *)
  for h = 1 to 100 do
    ignore (Rib.insert rib (ip 10 0 0 h) 1 (* next hop 1 *));
    ignore (Rib.insert rib (ip 10 0 1 h) 2);
    ignore (Rib.insert rib (ip 192 168 0 h) 3)
  done;

  (* control plane: flap routes in 10.0.2.0/24 between next hops 4 and 5;
     each address always carries a consistent next hop *)
  let stop = Atomic.make false in
  let control hop () =
    while not (Atomic.get stop) do
      for h = 1 to 50 do
        let k = ip 10 0 2 h in
        ignore (Rib.delete rib k);
        ignore (Rib.insert rib k hop)
      done
    done
  in
  let c1 = Domain.spawn (control 4) in

  (* data plane: resolve batches atomically; a batch must never see two
     different next hops for addresses updated by the same writer pass *)
  let resolved = ref 0 in
  for _ = 1 to 500 do
    let batch = [| ip 10 0 0 7; ip 10 0 1 7; ip 192 168 0 7; ip 10 0 2 25 |] in
    let hops = Rib.multifind rib batch in
    Array.iter (function Some _ -> incr resolved | None -> ()) hops
  done;

  (* subnet scan: all routes in 10.0.1.0/24, atomically *)
  let subnet = Rib.range rib (ip 10 0 1 0) (ip 10 0 1 255) in
  Printf.printf "10.0.1.0/24 has %d routes (first %s, last %s)\n" (List.length subnet)
    (show_ip (fst (List.hd subnet)))
    (show_ip (fst (List.nth subnet (List.length subnet - 1))));
  Atomic.set stop true;
  Domain.join c1;
  Rib.check rib;
  Printf.printf "resolved %d flow lookups; table has %d routes\n" !resolved
    (Rib.size rib);
  assert (List.length subnet = 100);
  print_endline "ip_routes OK"
